package lang

import (
	"fmt"
	"sort"
	"strings"
)

// Format renders the program as an indented listing, one statement per
// line — the form used by the CLI tools' -dump flags and by test failure
// output. The rendering is stable: formatting the same program twice
// yields identical text.
func Format(p *Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s {\n", p.Name)
	formatBlock(&b, p.Body, 1)
	b.WriteString("}\n")
	if len(p.Recovery) > 0 {
		// The recovery section is part of the program's identity: two
		// programs with equal bodies but different recovery code (or
		// different durable sets) must format differently, because the
		// machine's identity fingerprint hashes this listing.
		fmt.Fprintf(&b, "recovery resume=%d durable=%s {\n", p.ResumeAt, strings.Join(p.Durable, ","))
		formatBlock(&b, p.Recovery, 1)
		b.WriteString("}\n")
	}
	return b.String()
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("    ")
	}
}

func formatBlock(b *strings.Builder, stmts []Stmt, depth int) {
	for _, s := range stmts {
		formatStmt(b, s, depth)
	}
}

func formatStmt(b *strings.Builder, s Stmt, depth int) {
	switch s := s.(type) {
	case *IfStmt:
		indent(b, depth)
		fmt.Fprintf(b, "if %s {\n", s.Cond)
		formatBlock(b, s.Then, depth+1)
		if len(s.Else) > 0 {
			indent(b, depth)
			b.WriteString("} else {\n")
			formatBlock(b, s.Else, depth+1)
		}
		indent(b, depth)
		b.WriteString("}\n")
	case *WhileStmt:
		indent(b, depth)
		fmt.Fprintf(b, "while %s {\n", s.Cond)
		formatBlock(b, s.Body, depth+1)
		indent(b, depth)
		b.WriteString("}\n")
	default:
		indent(b, depth)
		fmt.Fprintf(b, "%s\n", s)
	}
}

// Analysis summarizes a program's static structure.
type Analysis struct {
	// Reads, Writes, Fences and Returns count statement occurrences
	// (static, not dynamic: a read inside a loop counts once).
	Reads, Writes, Fences, Returns int
	// Assigns counts local-computation statements.
	Assigns int
	// Locals lists the local variables assigned or read into, sorted.
	Locals []string
	// MaxLoopDepth is the deepest loop nesting.
	MaxLoopDepth int
}

// Analyze computes the static summary of a program.
func Analyze(p *Program) Analysis {
	a := Analysis{}
	locals := make(map[string]struct{})
	var walk func(stmts []Stmt, loopDepth int)
	walk = func(stmts []Stmt, loopDepth int) {
		if loopDepth > a.MaxLoopDepth {
			a.MaxLoopDepth = loopDepth
		}
		for _, s := range stmts {
			switch s := s.(type) {
			case *AssignStmt:
				a.Assigns++
				locals[s.Dst] = struct{}{}
			case *ReadStmt:
				a.Reads++
				locals[s.Dst] = struct{}{}
			case *TasStmt:
				a.Reads++
				a.Writes++
				locals[s.Dst] = struct{}{}
			case *WriteStmt:
				a.Writes++
			case *FenceStmt:
				a.Fences++
			case *ReturnStmt:
				a.Returns++
			case *IfStmt:
				walk(s.Then, loopDepth)
				walk(s.Else, loopDepth)
			case *WhileStmt:
				walk(s.Body, loopDepth+1)
			}
		}
	}
	walk(p.Body, 0)
	walk(p.Recovery, 0)
	a.Locals = make([]string, 0, len(locals))
	for l := range locals {
		a.Locals = append(a.Locals, l)
	}
	sort.Strings(a.Locals)
	return a
}

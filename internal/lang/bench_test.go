package lang

import (
	"strings"
	"testing"
)

// benchProgram is a loop-heavy program: n iterations of read-modify-write
// over locals plus one shared read per iteration.
func benchProgram(iters int64) *Program {
	return NewProgram("bench",
		Assign("i", I(0)),
		Assign("acc", I(0)),
		While(Lt(L("i"), I(iters)),
			Read("v", Add(I(100), Mod(L("i"), I(8)))),
			Assign("acc", Add(L("acc"), L("v"))),
			Assign("i", Add(L("i"), I(1))),
		),
		Return(L("acc")),
	)
}

// drive runs a ProcState to completion against a trivial memory.
func drive(b *testing.B, s *ProcState) Value {
	for {
		op, ok, err := s.NextOp()
		if err != nil {
			b.Fatal(err)
		}
		if !ok {
			return s.ReturnValue()
		}
		switch op.Kind {
		case OpRead:
			if err := s.CompleteRead(op.Reg); err != nil {
				b.Fatal(err)
			}
		case OpWrite:
			if err := s.CompleteWrite(); err != nil {
				b.Fatal(err)
			}
		case OpFence:
			if err := s.CompleteFence(); err != nil {
				b.Fatal(err)
			}
		case OpReturn:
			if err := s.CompleteReturn(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkInterpLoop measures interpreter throughput on local computation
// plus shared-read settling.
func BenchmarkInterpLoop(b *testing.B) {
	prog := benchProgram(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewProcState(prog, 0, 1)
		drive(b, s)
	}
}

// BenchmarkProcStateClone measures the cost of snapshotting a mid-loop
// process state — the primitive the model checker and encoder lean on.
func BenchmarkProcStateClone(b *testing.B) {
	prog := benchProgram(1000)
	s := NewProcState(prog, 0, 1)
	// Advance into the loop so the state is representative.
	for k := 0; k < 10; k++ {
		op, ok, err := s.NextOp()
		if err != nil || !ok || op.Kind != OpRead {
			b.Fatalf("setup: %v %v %v", op, ok, err)
		}
		if err := s.CompleteRead(1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Clone()
	}
}

// BenchmarkFingerprint measures the canonical-state encoding used for
// visited-set pruning.
func BenchmarkFingerprint(b *testing.B) {
	prog := benchProgram(1000)
	s := NewProcState(prog, 0, 1)
	for k := 0; k < 10; k++ {
		if err := s.CompleteRead(1); err != nil {
			b.Fatal(err)
		}
	}
	var sb strings.Builder
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sb.Reset()
		s.AppendFingerprint(&sb)
	}
}

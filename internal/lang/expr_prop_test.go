package lang

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randExpr builds a random expression tree over the given locals, with
// depth-bounded recursion. Division and modulo are avoided so evaluation
// never errors; their error paths are tested separately.
func randExpr(rng *rand.Rand, depth int) Expr {
	if depth == 0 || rng.Intn(3) == 0 {
		switch rng.Intn(4) {
		case 0:
			return I(int64(rng.Intn(21) - 10))
		case 1:
			return L("a")
		case 2:
			return L("b")
		default:
			return PID()
		}
	}
	l, r := randExpr(rng, depth-1), randExpr(rng, depth-1)
	switch rng.Intn(10) {
	case 0:
		return Add(l, r)
	case 1:
		return Sub(l, r)
	case 2:
		return Mul(l, r)
	case 3:
		return Eq(l, r)
	case 4:
		return Lt(l, r)
	case 5:
		return And(l, r)
	case 6:
		return Or(l, r)
	case 7:
		return Not(l)
	case 8:
		return Cond(l, r, I(0))
	default:
		return Ge(l, r)
	}
}

func evalOK(t *testing.T, e Expr, env *Env) Value {
	t.Helper()
	v, err := e.eval(env)
	if err != nil {
		t.Fatalf("eval %s: %v", e, err)
	}
	return v
}

// TestQuickEvalDeterministic: expression evaluation is pure — same
// environment, same value, and the environment is never mutated.
func TestQuickEvalDeterministic(t *testing.T) {
	f := func(seed int64, a, b int8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := randExpr(rng, 4)
		env := &Env{PID: 3, N: 8, Locals: map[string]Value{"a": Value(a), "b": Value(b)}}
		v1, err1 := e.eval(env)
		v2, err2 := e.eval(env)
		if (err1 == nil) != (err2 == nil) || v1 != v2 {
			return false
		}
		return env.Locals["a"] == Value(a) && env.Locals["b"] == Value(b) && len(env.Locals) == 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickBooleanResultsAre01: comparison and logical operators always
// yield 0 or 1, whatever their operands.
func TestQuickBooleanResultsAre01(t *testing.T) {
	f := func(seed int64, a, b int16) bool {
		rng := rand.New(rand.NewSource(seed))
		x, y := randExpr(rng, 2), randExpr(rng, 2)
		env := &Env{PID: 1, N: 4, Locals: map[string]Value{"a": Value(a), "b": Value(b)}}
		for _, e := range []Expr{Eq(x, y), Ne(x, y), Lt(x, y), Le(x, y), Gt(x, y), Ge(x, y), And(x, y), Or(x, y), Not(x)} {
			v, err := e.eval(env)
			if err != nil {
				continue
			}
			if v != 0 && v != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestDeMorgan: !(x && y) == (!x || !y) and dually, over arbitrary
// subexpressions.
func TestDeMorgan(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	env := &Env{PID: 2, N: 4, Locals: map[string]Value{"a": 5, "b": -3}}
	for trial := 0; trial < 200; trial++ {
		x, y := randExpr(rng, 3), randExpr(rng, 3)
		l1 := evalOK(t, Not(And(x, y)), env)
		r1 := evalOK(t, Or(Not(x), Not(y)), env)
		if l1 != r1 {
			t.Fatalf("De Morgan ∧: !(%s && %s)", x, y)
		}
		l2 := evalOK(t, Not(Or(x, y)), env)
		r2 := evalOK(t, And(Not(x), Not(y)), env)
		if l2 != r2 {
			t.Fatalf("De Morgan ∨: !(%s || %s)", x, y)
		}
	}
}

// TestComparisonTrichotomy: exactly one of <, ==, > holds.
func TestComparisonTrichotomy(t *testing.T) {
	f := func(a, b int64) bool {
		env := &Env{Locals: map[string]Value{"a": a, "b": b}}
		lt, _ := Lt(L("a"), L("b")).eval(env)
		eq, _ := Eq(L("a"), L("b")).eval(env)
		gt, _ := Gt(L("a"), L("b")).eval(env)
		return lt+eq+gt == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestCondEquivalence: Cond(c, a, b) matches the if/else semantics, and
// short-circuits the untaken branch (errors in it are not raised).
func TestCondEquivalence(t *testing.T) {
	env := &Env{Locals: map[string]Value{}}
	if v := evalOK(t, Cond(I(1), I(7), Div(I(1), I(0))), env); v != 7 {
		t.Fatalf("taken-then: %d", v)
	}
	if v := evalOK(t, Cond(I(0), Div(I(1), I(0)), I(9)), env); v != 9 {
		t.Fatalf("taken-else: %d", v)
	}
	if _, err := Cond(I(1), Div(I(1), I(0)), I(9)).eval(env); err == nil {
		t.Fatal("error in the taken branch must surface")
	}
}

// TestNegativeValuesFlowThrough: the machine word is a signed int64;
// arithmetic must not clamp or wrap surprisingly within range.
func TestNegativeValuesFlowThrough(t *testing.T) {
	env := &Env{Locals: map[string]Value{"a": -40}}
	cases := []struct {
		e    Expr
		want Value
	}{
		{Add(L("a"), I(-2)), -42},
		{Sub(I(0), L("a")), 40},
		{Mul(L("a"), I(-1)), 40},
		{Div(L("a"), I(4)), -10},
		{Mod(L("a"), I(7)), -5}, // Go semantics: sign follows the dividend
		{Lt(L("a"), I(0)), 1},
	}
	for _, c := range cases {
		if got := evalOK(t, c.e, env); got != c.want {
			t.Errorf("%s = %d, want %d", c.e, got, c.want)
		}
	}
}

// TestDeepNesting: the interpreter handles deeply nested control flow
// without recursion limits (the control stack is explicit).
func TestDeepNesting(t *testing.T) {
	const depth = 200
	var body []Stmt = []Stmt{Assign("x", Add(L("x"), I(1)))}
	for i := 0; i < depth; i++ {
		body = []Stmt{If(I(1), body...)}
	}
	prog := NewProgram("deep", append(body, Return(L("x")))...)
	v, _ := run(t, prog, 0, 1, map[Value]Value{})
	if v != 1 {
		t.Fatalf("deeply nested result %d, want 1", v)
	}
}

// TestShadowFreeLocals: locals are function-scoped, not block-scoped — a
// loop variable keeps its final value after the loop, which the lock
// builders rely on.
func TestShadowFreeLocals(t *testing.T) {
	stmts := For("j", I(0), I(5))
	prog := NewProgram("scope", append(stmts, Return(L("j")))...)
	if v, _ := run(t, prog, 0, 1, map[Value]Value{}); v != 5 {
		t.Fatalf("loop variable after loop = %d, want 5", v)
	}
}

package core

import (
	"fmt"
	"testing"

	"tradingfences/internal/locks"
	"tradingfences/internal/perm"
)

// TestEncodeDeterministic: encoding the same permutation twice yields
// bit-identical codes — the construction has no hidden nondeterminism
// (map iteration, scheduling ties, etc.).
func TestEncodeDeterministic(t *testing.T) {
	for _, mk := range []struct {
		name string
		ctor locks.Constructor
	}{
		{"bakery", locks.NewBakery},
		{"tournament", locks.NewTournament},
	} {
		t.Run(mk.name, func(t *testing.T) {
			pi := perm.Perm{4, 1, 5, 0, 3, 2}
			runOnce := func() (string, int) {
				enc, _ := encoderFor(t, mk.ctor, 6)
				res, err := enc.Encode(pi)
				if err != nil {
					t.Fatal(err)
				}
				w := SerializeStacks(res.Stacks)
				return fmt.Sprintf("%x", w.Bytes()), w.Len()
			}
			c1, l1 := runOnce()
			c2, l2 := runOnce()
			if c1 != c2 || l1 != l2 {
				t.Fatalf("encoding nondeterministic: %s/%d vs %s/%d", c1, l1, c2, l2)
			}
		})
	}
}

// TestMeasurementScaling: for Count over Bakery, the construction's totals
// scale as the theory predicts — β linear in n, ρ quadratic in n (each of
// the n processes scans Θ(n) registers).
func TestMeasurementScaling(t *testing.T) {
	measure := func(n int) Measurement {
		enc, _ := encoderFor(t, locks.NewBakery, n)
		res, err := enc.Encode(perm.Identity(n))
		if err != nil {
			t.Fatal(err)
		}
		return Measure(res)
	}
	m8, m16, m32 := measure(8), measure(16), measure(32)

	// β doubles with n.
	if r := float64(m16.Fences) / float64(m8.Fences); r < 1.8 || r > 2.2 {
		t.Errorf("β(16)/β(8) = %f, want ~2", r)
	}
	if r := float64(m32.Fences) / float64(m16.Fences); r < 1.8 || r > 2.2 {
		t.Errorf("β(32)/β(16) = %f, want ~2", r)
	}
	// ρ quadruples with n (quadratic).
	if r := float64(m32.RMRs) / float64(m16.RMRs); r < 3.5 || r > 4.5 {
		t.Errorf("ρ(32)/ρ(16) = %f, want ~4", r)
	}
	// Bit length grows superlinearly but subquadratically (Θ(n log n)
	// territory once normalized).
	if m32.BitLen <= 2*m16.BitLen {
		t.Errorf("bitlen(32)=%d vs bitlen(16)=%d: should more than double", m32.BitLen, m16.BitLen)
	}
	if m32.BitLen >= 4*m16.BitLen {
		t.Errorf("bitlen(32)=%d vs bitlen(16)=%d: should less than quadruple", m32.BitLen, m16.BitLen)
	}
}

// TestAllPermsGT2N5: the complete construction round trip for all 120
// permutations of [5] over GT_2 — the multi-level lock with the richest
// command mix. Gated behind -short.
func TestAllPermsGT2N5(t *testing.T) {
	if testing.Short() {
		t.Skip("120 constructions")
	}
	enc, build := encoderFor(t, gtCtor(2), 5)
	codes := make(map[string]struct{})
	perm.Enumerate(5, func(pi perm.Perm) bool {
		p := pi.Clone()
		res, err := enc.Encode(p)
		if err != nil {
			t.Fatalf("Encode(%v): %v", p, err)
		}
		cfg, err := build()
		if err != nil {
			t.Fatal(err)
		}
		got, err := RecoverPermutation(cfg, res.Stacks)
		if err != nil {
			t.Fatalf("Recover(%v): %v", p, err)
		}
		if !got.Equal(p) {
			t.Fatalf("round trip %v -> %v", p, got)
		}
		w := SerializeStacks(res.Stacks)
		codes[fmt.Sprintf("%x:%d", w.Bytes(), w.Len())] = struct{}{}
		return true
	})
	if len(codes) != 120 {
		t.Fatalf("%d distinct codes for 120 permutations", len(codes))
	}
}

// TestEncodeWithVerifyLargerN: the invariant-checked construction at a
// size where all command types are in play. Gated behind -short.
func TestEncodeWithVerifyLargerN(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	enc, _ := encoderFor(t, locks.NewBakery, 24)
	enc.Verify = true
	if _, err := enc.Encode(perm.Reverse(24)); err != nil {
		t.Fatal(err)
	}
}

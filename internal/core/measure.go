package core

import (
	"fmt"
	"math"

	"tradingfences/internal/bits"
	"tradingfences/internal/machine"
	"tradingfences/internal/perm"
)

// CommandTagBits is the fixed cost of a command tag in the bit-exact
// encoding: five command kinds fit in 3 bits.
const CommandTagBits = 3

// Measurement aggregates, for one encoded execution E_π, everything
// Theorem 4.2 relates: the fence count β(E), the remote-step count ρ(E),
// the command count m, the parameter-value sum v, and the bit-exact length
// of the stack encoding.
type Measurement struct {
	N int
	// Fences is β(E_π): total fence steps in the constructed execution.
	Fences int64
	// RMRs is ρ(E_π): total remote steps.
	RMRs int64
	// Steps is the total step count of E_π.
	Steps int64
	// HiddenCommits counts commits executed by waiting processes.
	HiddenCommits int64
	// Commands is m: the total number of commands across all stacks.
	Commands int
	// ParamSum is v: the sum of command values (1 for proceed/commit, k
	// for the parameterized commands).
	ParamSum int64
	// PerKind counts commands by kind (the Table 1 census).
	PerKind map[CmdKind]int
	// BitLen is the bit-exact code length: per command a 3-bit tag plus
	// the Elias-gamma code of its parameter, plus a 3-bit end marker per
	// process stack (so stack boundaries are self-delimiting).
	BitLen int
	// Bound is m·(log2(v/m) + 1), the paper's upper bound on the code
	// length up to constants (Section 5.3.4, Equation 7).
	Bound float64
	// TheoremLHS is β·(log2(ρ/β) + 1), the left side of Theorem 4.2.
	TheoremLHS float64
	// InfoContent is log2(n!), the information-theoretic requirement.
	InfoContent float64
}

// Measure computes the measurement for an encoding result.
func Measure(res *EncodeResult) Measurement {
	n := len(res.Perm)
	st := res.Final.Config.Stats()
	m := Measurement{
		N:           n,
		Fences:      st.TotalFences(),
		RMRs:        st.TotalRMRs(),
		Steps:       st.TotalSteps(),
		PerKind:     make(map[CmdKind]int),
		InfoContent: perm.Log2Factorial(n),
	}
	for _, h := range res.Final.Hidden {
		if h {
			m.HiddenCommits++
		}
	}
	for _, stack := range res.Stacks {
		m.BitLen += CommandTagBits // end-of-stack marker
		for i := 0; i < stack.Len(); i++ {
			cmd := stack.At(i)
			m.Commands++
			m.ParamSum += cmd.Value()
			m.PerKind[cmd.Kind]++
			m.BitLen += CommandTagBits
			if cmd.HasParam() {
				m.BitLen += bits.GammaLen(uint64(cmd.K))
			}
		}
	}
	m.Bound = boundFn(float64(m.Commands), float64(m.ParamSum))
	m.TheoremLHS = boundFn(float64(m.Fences), float64(m.RMRs))
	return m
}

// boundFn computes a·(log2(b/a) + 1), the functional form of both the code
// length bound and the theorem's left side, with the degenerate cases
// handled (a = 0 yields 0; b < a clamps the log at 0).
func boundFn(a, b float64) float64 {
	if a <= 0 {
		return 0
	}
	l := 0.0
	if b > a {
		l = math.Log2(b / a)
	}
	return a * (l + 1)
}

// TradeoffLHS computes f·(log2(r/f)+1) for per-passage counts — the
// per-process form of Equation 1 used by the sweep experiments.
func TradeoffLHS(fences, rmrs float64) float64 { return boundFn(fences, rmrs) }

// SerializeStacks emits the bit-exact encoding of the stacks: for each
// process in ID order, its commands from bottom to top, each as a 3-bit
// tag plus (for parameterized commands) the Elias-gamma code of k, then an
// end-of-stack marker. DeserializeStacks inverts it; together they certify
// that BitLen is achievable, not just an estimate.
func SerializeStacks(stacks []*Stack) *bits.Writer {
	var w bits.Writer
	for _, s := range stacks {
		for i := 0; i < s.Len(); i++ {
			cmd := s.At(i)
			w.WriteBits(uint64(cmd.Kind), CommandTagBits)
			if cmd.HasParam() {
				// K >= 1 always; the encoder never emits k = 0.
				_ = w.WriteGamma(uint64(cmd.K))
			}
		}
		w.WriteBits(0, CommandTagBits) // end marker
	}
	return &w
}

// DeserializeStacks parses the output of SerializeStacks back into n
// command stacks.
func DeserializeStacks(r *bits.Reader, n int) ([]*Stack, error) {
	stacks := make([]*Stack, n)
	for p := 0; p < n; p++ {
		s := &Stack{}
		for {
			tag, err := r.ReadBits(CommandTagBits)
			if err != nil {
				return nil, fmt.Errorf("core: stack %d: %w", p, err)
			}
			if tag == 0 {
				break
			}
			kind := CmdKind(tag)
			cmd := &Command{Kind: kind}
			switch kind {
			case CmdProceed, CmdCommit:
			case CmdWaitHiddenCommit, CmdWaitReadFinish, CmdWaitLocalFinish:
				k, err := r.ReadGamma()
				if err != nil {
					return nil, fmt.Errorf("core: stack %d param: %w", p, err)
				}
				cmd.K = int(k)
			default:
				return nil, fmt.Errorf("core: stack %d: invalid command tag %d", p, tag)
			}
			// Commands were serialized bottom-to-top; re-adding each at
			// the bottom reverses twice, so push on top instead to keep
			// bottom-to-top order.
			s.PushTop(cmd)
		}
		stacks[p] = s
	}
	return stacks, nil
}

// RecoverPermutation decodes the execution determined by stacks from a
// fresh configuration and reads the permutation off the return values:
// the process returning rank k is p_k. This is the decoding direction of
// the counting argument — stacks → execution → permutation.
func RecoverPermutation(cfg *machine.Config, stacks []*Stack) (perm.Perm, error) {
	work := make([]*Stack, len(stacks))
	for i, s := range stacks {
		work[i] = s.Clone()
	}
	dec, err := Decode(cfg, work)
	if err != nil {
		return nil, err
	}
	n := cfg.N()
	pi := make(perm.Perm, n)
	seen := make([]bool, n)
	for p := 0; p < n; p++ {
		if !dec.Config.Halted(p) {
			return nil, fmt.Errorf("core: process %d did not finish during recovery", p)
		}
		k := dec.Config.ReturnValue(p)
		if k < 0 || k >= int64(n) || seen[k] {
			return nil, fmt.Errorf("core: return values do not form a permutation (process %d returned %d)", p, k)
		}
		seen[k] = true
		pi[k] = p
	}
	return pi, nil
}

package core

import (
	"context"
	"errors"
	"fmt"

	"tradingfences/internal/lang"
	"tradingfences/internal/machine"
	"tradingfences/internal/perm"
	"tradingfences/internal/run"
)

// ErrNotConverged is returned when the iterative construction fails to
// complete within its iteration budget.
var ErrNotConverged = errors.New("core: encoder did not converge")

// ErrNotOrdering is returned when the constructed execution does not return
// rank i to the i-th process of the permutation — i.e. the algorithm under
// encoding violates Definition 4.1.
var ErrNotOrdering = errors.New("core: algorithm is not ordering (ranks not reproduced)")

// Encoder runs the paper's Section 5.2 construction: given a factory for
// initial configurations of an ordering algorithm, it builds, for a
// permutation π, the command-stack sequence that uniquely encodes the
// execution E_π.
type Encoder struct {
	// Build returns a fresh initial configuration C_init of the ordering
	// algorithm for n processes. The encoder requires the PSO model — the
	// paper's machine.
	Build func() (*machine.Config, error)
	// MaxIterations bounds the construction (0 = automatic).
	MaxIterations int
	// Verify enables per-iteration validation of the structural
	// invariants of Lemma 5.1 ((I1), (I2), (I4), (I6), (I10)) and
	// Claim 5.2 against the decoded execution. Used by the test suite;
	// costs one extra pass over stacks and processes per iteration.
	Verify bool
	// DisableCheckpoint forces a full re-decode from C_init at every
	// iteration instead of resuming from the previous iteration's
	// checkpoint (the point where p_τ's stack emptied). Exists for the
	// equivalence tests and the ablation benchmark.
	DisableCheckpoint bool
	// Ctx cancels the construction between and during decode passes
	// (nil = context.Background()).
	Ctx context.Context
	// Budget bounds the construction: MaxWall applies to the whole
	// encode, MaxSteps to each decode pass (0 = the decoder's default).
	Budget run.Budget
}

// EncodeResult is the outcome of the construction for one permutation.
type EncodeResult struct {
	// Perm is the permutation π that was encoded.
	Perm perm.Perm
	// Stacks are the final command stacks, indexed by process ID.
	Stacks []*Stack
	// Final is the decode of the final stack sequence: the execution E_π.
	Final *DecodeResult
	// Iterations is the number of construction iterations (= total number
	// of commands, since each iteration adds exactly one).
	Iterations int
}

// Encode constructs and encodes E_π for the permutation pi.
func (e *Encoder) Encode(pi perm.Perm) (*EncodeResult, error) {
	if !pi.Valid() {
		return nil, fmt.Errorf("core: %v is not a permutation", pi)
	}
	probe, err := e.Build()
	if err != nil {
		return nil, err
	}
	n := probe.N()
	if len(pi) != n {
		return nil, fmt.Errorf("core: permutation over [%d] for %d processes", len(pi), n)
	}
	if probe.Model() != machine.PSO {
		return nil, fmt.Errorf("core: encoder requires the PSO machine, got %v", probe.Model())
	}

	maxIter := e.MaxIterations
	if maxIter == 0 {
		// Each passage contributes O(fences) commands; Bakery-family
		// algorithms perform O(1)..O(log n) fences per passage plus one
		// command per process, so this is a generous budget.
		maxIter = 200*n + 10000
	}

	// Master stacks: grown monotonically, one command per iteration,
	// always appended at the bottom of one stack (Section 5.2).
	master := make([]*Stack, n)
	for i := range master {
		master[i] = &Stack{}
	}

	// The encoder-level meter owns the wall budget and the context; each
	// decode pass gets its own step budget (MaxSteps, or the decoder's
	// default when zero) plus the same context.
	meter := run.NewMeter(e.Ctx, run.Budget{MaxWall: e.Budget.MaxWall})
	passOpts := DecodeOpts{Ctx: e.Ctx, Budget: run.Budget{MaxSteps: e.Budget.MaxSteps}}

	var dec *DecodeResult
	var cp *Checkpoint
	cpOwner := -1 // process the checkpoint was captured for
	iterations := 0
	for ; iterations < maxIter; iterations++ {
		if err := meter.Check(); err != nil {
			return nil, fmt.Errorf("core: encode aborted at iteration %d: %w", iterations, err)
		}
		// masterTau: the process that will most likely receive the next
		// command — the checkpoint target for this decode.
		masterTau := -1
		for k := n - 1; k >= 0; k-- {
			if !master[pi[k]].Empty() {
				masterTau = pi[k]
				break
			}
		}

		if !e.DisableCheckpoint && cp.valid() && cpOwner == masterTau && cpOwner >= 0 {
			// Resume from the shared prefix: the command just added sits
			// at the bottom of cpOwner's stack, which was empty at the
			// checkpoint.
			newCmd := master[cpOwner].At(0)
			opts := passOpts
			opts.CheckpointProc = cpOwner
			var err error
			dec, cp, err = ResumeDecodeWith(cp, cpOwner, newCmd, opts)
			if err != nil {
				return nil, err
			}
		} else {
			cfg, err := e.Build()
			if err != nil {
				return nil, err
			}
			work := make([]*Stack, n)
			for i := range master {
				work[i] = master[i].Clone()
			}
			opts := passOpts
			opts.CheckpointProc = masterTau
			dec, cp, err = DecodeCheckpointed(cfg, work, opts)
			if err != nil {
				return nil, err
			}
			cpOwner = masterTau
		}

		// τ_i: the largest permutation index whose process has a
		// non-empty master stack.
		tau := -1
		for k := n - 1; k >= 0; k-- {
			if !master[pi[k]].Empty() {
				tau = k
				break
			}
		}
		var ell int
		if tau == -1 || dec.Config.Halted(pi[tau]) {
			ell = tau + 1
		} else {
			ell = tau
		}

		if e.Verify {
			if err := verifyInvariants(pi, master, dec, tau, ell); err != nil {
				return nil, fmt.Errorf("core: invariant violated at iteration %d: %w", iterations, err)
			}
		}

		last := pi[n-1]
		if dec.Config.Halted(last) {
			break // construction complete
		}
		if ell >= n {
			return nil, fmt.Errorf("%w: p_{n-1} not final but no process needs commands", ErrDecodeStuck)
		}
		pl := pi[ell]

		cmd, err := e.nextCommand(dec, master[pl], pl)
		if err != nil {
			return nil, fmt.Errorf("%w (π-position %d, process %d, iteration %d)", err, ell, pl, iterations)
		}
		master[pl].AddBottom(cmd)
	}
	if iterations >= maxIter {
		return nil, fmt.Errorf("%w after %d iterations", ErrNotConverged, iterations)
	}

	// Verify the ordering property (I2): in E_π, process p_k returns k.
	// This both validates the construction and certifies that π can be
	// reconstructed from the execution — the heart of the counting
	// argument.
	for k := 0; k < n; k++ {
		p := pi[k]
		if !dec.Config.Halted(p) {
			return nil, fmt.Errorf("%w: process %d (π-position %d) never finished", ErrNotOrdering, p, k)
		}
		if got := dec.Config.ReturnValue(p); got != int64(k) {
			return nil, fmt.Errorf("%w: process %d returned %d, want rank %d", ErrNotOrdering, p, got, k)
		}
	}

	return &EncodeResult{
		Perm:       pi.Clone(),
		Stacks:     master,
		Final:      dec,
		Iterations: iterations,
	}, nil
}

// nextCommand determines cmd_{i+1} for process pl per cases E1/E2a/E2b.
func (e *Encoder) nextCommand(dec *DecodeResult, masterStack *Stack, pl int) (*Command, error) {
	cfg := dec.Config

	// Case E1: pl has no commands yet and λ > 0 earlier processes
	// accessed registers in pl's memory segment during E_i.
	if masterStack.Empty() {
		accessors := make(map[int]struct{})
		for _, s := range dec.Steps {
			if s.P == pl || s.SegOwner != pl {
				continue
			}
			if (s.Kind == machine.StepRead && s.FromMemory) || s.Kind == machine.StepCommit {
				accessors[s.P] = struct{}{}
			}
		}
		if len(accessors) > 0 {
			return &Command{Kind: CmdWaitLocalFinish, K: len(accessors)}, nil
		}
	}

	if cfg.Halted(pl) {
		return nil, fmt.Errorf("nextCommand for finished process %d", pl)
	}
	op, ok, err := cfg.NextOp(pl)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("nextCommand: process %d has no pending operation", pl)
	}

	// Case E2a: pl is not blocked at a fence with a non-empty buffer.
	if op.Kind != lang.OpFence || cfg.BufferLen(pl) == 0 {
		return &Command{Kind: CmdProceed}, nil
	}

	// Case E2b: pl is poised at a fence with buffered writes. Analyze the
	// postfix E** of the decoded execution after pl's stack first became
	// empty.
	emptyAt := dec.EmptyAt[pl]
	if emptyAt < 0 {
		return nil, fmt.Errorf("process %d blocked at fence but its stack never emptied", pl)
	}
	wb := make(map[machine.Reg]struct{})
	for _, r := range cfg.BufferRegs(pl) {
		wb[r] = struct{}{}
	}
	hiddenRegs := make(map[machine.Reg]struct{})
	readers := make(map[int]struct{})
	for _, s := range dec.Steps[emptyAt:] {
		if s.P == pl {
			continue
		}
		if _, inWB := wb[s.Reg]; !inWB {
			continue
		}
		switch {
		case s.Kind == machine.StepCommit:
			hiddenRegs[s.Reg] = struct{}{}
		case s.Kind == machine.StepRead && s.FromMemory:
			readers[s.P] = struct{}{}
		}
	}
	switch {
	case len(hiddenRegs) > 0:
		return &Command{Kind: CmdWaitHiddenCommit, K: len(hiddenRegs)}, nil
	case len(readers) > 0:
		return &Command{Kind: CmdWaitReadFinish, K: len(readers)}, nil
	default:
		return &Command{Kind: CmdCommit}, nil
	}
}

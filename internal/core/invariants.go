package core

import (
	"fmt"

	"tradingfences/internal/perm"
)

// CheckStackInvariants verifies the structural properties of Lemma 5.1 on a
// single final command stack:
//
//	(I4)  at most one wait-local-finish command, and only at the top;
//	(I10) below a wait-read-finish there can only be a commit command;
//	      below a wait-hidden-commit only a wait-read-finish, proceed or
//	      commit; and below a commit only a proceed.
//
// These invariants are what bounds the number of commands by the number of
// fences (Lemma 5.11): excluding the single wait-local-finish, at least
// every fourth command is a proceed, and proceeds are consumed only at
// fence or return boundaries.
// verifyInvariants validates the decoded execution of the master stacks
// against the structural properties of Lemma 5.1 and Claim 5.2 at one
// encoder iteration: tau is the largest π-index with a non-empty master
// stack (-1 if none) and ell the index selected by Equation 3.
func verifyInvariants(pi perm.Perm, master []*Stack, dec *DecodeResult, tau, ell int) error {
	n := len(pi)
	cfg := dec.Config
	steps := cfg.Stats().Steps

	// (I1): stack of p_k is empty iff k > tau.
	for k := 0; k < n; k++ {
		if empty := master[pi[k]].Empty(); empty != (k > tau) {
			return fmt.Errorf("(I1): stack of π-position %d empty=%v with τ=%d", k, empty, tau)
		}
	}

	// (I2): p_k final with value k for k < τ; initial (no steps) for
	// k > τ; and any final process has value = its π-position.
	for k := 0; k < n; k++ {
		p := pi[k]
		switch {
		case k < tau:
			if !cfg.Halted(p) {
				return fmt.Errorf("(I2): π-position %d (process %d) not final with τ=%d", k, p, tau)
			}
		case k > tau:
			if steps[p] != 0 {
				return fmt.Errorf("(I2): π-position %d (process %d) took %d steps with τ=%d", k, p, steps[p], tau)
			}
		}
		if cfg.Halted(p) && cfg.ReturnValue(p) != int64(k) {
			return fmt.Errorf("(I2): final process %d returned %d, want π-position %d", p, cfg.ReturnValue(p), k)
		}
	}

	// (I6): the decode consumed p_τ's stack completely.
	if tau >= 0 && dec.EmptyAt[pi[tau]] < 0 {
		return fmt.Errorf("(I6): p_τ's stack (process %d) never emptied during the decode", pi[tau])
	}

	// Claim 5.2: all write buffers except possibly p_ℓ's are empty.
	for p := 0; p < n; p++ {
		if ell < n && p == pi[ell] {
			continue
		}
		if cfg.BufferLen(p) != 0 {
			return fmt.Errorf("claim 5.2: process %d has %d buffered writes (ℓ=%d)", p, cfg.BufferLen(p), ell)
		}
	}

	// (I4)/(I10): structural stack invariants.
	for p, s := range master {
		if err := CheckStackInvariants(s); err != nil {
			return fmt.Errorf("stack of process %d: %w", p, err)
		}
	}
	return nil
}

func CheckStackInvariants(s *Stack) error {
	wlf := 0
	for i := 0; i < s.Len(); i++ { // i = 0 is the bottom
		cmd := s.At(i)
		if cmd.Kind == CmdWaitLocalFinish {
			wlf++
			if wlf > 1 {
				return fmt.Errorf("more than one wait-local-finish (I4)")
			}
			if i != s.Len()-1 {
				return fmt.Errorf("wait-local-finish not at the top (I4)")
			}
		}
		if i == 0 {
			continue
		}
		below := s.At(i - 1) // the command below cmd
		switch cmd.Kind {
		case CmdWaitReadFinish:
			if below.Kind != CmdCommit {
				return fmt.Errorf("%v below wait-read-finish, want commit (I10)", below.Kind)
			}
		case CmdWaitHiddenCommit:
			switch below.Kind {
			case CmdWaitReadFinish, CmdProceed, CmdCommit:
			default:
				return fmt.Errorf("%v below wait-hidden-commit (I10)", below.Kind)
			}
		case CmdCommit:
			if below.Kind != CmdProceed {
				return fmt.Errorf("%v below commit, want proceed (I10)", below.Kind)
			}
		}
	}
	return nil
}

package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"tradingfences/internal/locks"
	"tradingfences/internal/perm"
	"tradingfences/internal/run"
)

// TestDecodeDefaultStepCap pins the decoder's default step budget to the
// legacy hard-coded cap: a zero Budget must behave exactly as before.
func TestDecodeDefaultStepCap(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		want := int64(1000*n*n + 1_000_000)
		if got := DefaultDecodeSteps(n); got != want {
			t.Errorf("DefaultDecodeSteps(%d) = %d, want legacy cap %d", n, got, want)
		}
	}
}

// TestDecodeStepBudgetTrips drives a real decode into a tiny explicit step
// budget and requires the structured *run.BudgetError (no silent result,
// no unstructured string error).
func TestDecodeStepBudgetTrips(t *testing.T) {
	enc, build := encoderFor(t, locks.NewBakery, 3)
	res, err := enc.Encode(perm.Perm{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := build()
	if err != nil {
		t.Fatal(err)
	}
	work := make([]*Stack, len(res.Stacks))
	for i, s := range res.Stacks {
		work[i] = s.Clone()
	}
	_, err = DecodeWith(cfg, work, DecodeOpts{Budget: run.Budget{MaxSteps: 2}})
	var be *run.BudgetError
	if !errors.As(err, &be) || be.Resource != "steps" {
		t.Fatalf("want steps BudgetError, got %v", err)
	}
	if !errors.Is(err, run.ErrBudgetExceeded) {
		t.Fatalf("budget error does not match ErrBudgetExceeded: %v", err)
	}
}

// TestDecodeContextCancellation cancels a decode before it starts; the
// decoder must notice on its first meter charge.
func TestDecodeContextCancellation(t *testing.T) {
	enc, build := encoderFor(t, locks.NewBakery, 3)
	res, err := enc.Encode(perm.Perm{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := build()
	if err != nil {
		t.Fatal(err)
	}
	work := make([]*Stack, len(res.Stacks))
	for i, s := range res.Stacks {
		work[i] = s.Clone()
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = DecodeWith(cfg, work, DecodeOpts{Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestEncodeContextCancellation cancels the construction outright; Encode
// must return promptly with an error matching context.Canceled.
func TestEncodeContextCancellation(t *testing.T) {
	enc, _ := encoderFor(t, locks.NewBakery, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	enc.Ctx = ctx
	_, err := enc.Encode(perm.Perm{3, 1, 0, 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestEncodeWallBudget gives the whole construction a vanishing wall
// budget; the encoder-level meter must trip with a structured error.
func TestEncodeWallBudget(t *testing.T) {
	enc, _ := encoderFor(t, locks.NewBakery, 4)
	enc.Budget = run.Budget{MaxWall: time.Nanosecond}
	_, err := enc.Encode(perm.Perm{3, 1, 0, 2})
	var be *run.BudgetError
	if !errors.As(err, &be) || be.Resource != "wall" {
		t.Fatalf("want wall BudgetError, got %v", err)
	}
}

// TestEncodeWithBudgetSucceeds threads a generous budget through a full
// construction: budgets must be invisible when not exceeded, including
// across checkpoint resumes.
func TestEncodeWithBudgetSucceeds(t *testing.T) {
	enc, _ := encoderFor(t, locks.NewBakery, 3)
	enc.Ctx = context.Background()
	enc.Budget = run.Budget{MaxSteps: DefaultDecodeSteps(3), MaxWall: time.Minute}
	res, err := enc.Encode(perm.Perm{1, 2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations == 0 {
		t.Fatal("construction reported zero iterations")
	}
}

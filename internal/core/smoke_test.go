package core

import (
	"testing"

	"tradingfences/internal/locks"
	"tradingfences/internal/machine"
	"tradingfences/internal/objects"
	"tradingfences/internal/perm"
)

// buildCountEncoder returns an Encoder over Count-on-lock for n processes.
func buildCountEncoder(t *testing.T, ctor locks.Constructor, n int) *Encoder {
	t.Helper()
	lay := machine.NewLayout()
	lk, err := ctor(lay, "lk", n)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := objects.NewCount(lay, "count", lk)
	if err != nil {
		t.Fatal(err)
	}
	return &Encoder{
		Build: func() (*machine.Config, error) {
			return machine.NewConfig(machine.PSO, lay, obj.Programs())
		},
	}
}

func TestEncodeSmokeIdentity(t *testing.T) {
	enc := buildCountEncoder(t, locks.NewBakery, 4)
	res, err := enc.Encode(perm.Identity(4))
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	m := Measure(res)
	t.Logf("n=4 identity: iterations=%d commands=%d paramSum=%d fences=%d rmrs=%d bits=%d steps=%d",
		res.Iterations, m.Commands, m.ParamSum, m.Fences, m.RMRs, m.BitLen, m.Steps)
	if m.Commands == 0 || m.Fences == 0 {
		t.Fatal("degenerate measurement")
	}
}

func TestEncodeSmokeReverse(t *testing.T) {
	enc := buildCountEncoder(t, locks.NewBakery, 4)
	res, err := enc.Encode(perm.Reverse(4))
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	m := Measure(res)
	t.Logf("n=4 reverse: iterations=%d commands=%d paramSum=%d fences=%d rmrs=%d hidden=%d",
		res.Iterations, m.Commands, m.ParamSum, m.Fences, m.RMRs, m.HiddenCommits)
}

package core

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"tradingfences/internal/lang"
	"tradingfences/internal/machine"
	"tradingfences/internal/run"
)

// ErrDecodeStuck is returned when the decoder's execution never reaches the
// configuration the encoder expects — the symptom of running the encoder on
// an algorithm that is not ordering (Definition 4.1) or not correct under
// the PSO machine.
var ErrDecodeStuck = errors.New("core: decode stalled (algorithm not ordering, or incorrect under PSO?)")

// DecodeResult is the execution E(Γ) determined by an extended
// configuration, together with everything the encoder's analysis needs.
type DecodeResult struct {
	// Config is the system configuration reached at the end of E(Γ).
	Config *machine.Config
	// Steps is the executed step sequence; Hidden[i] marks step i as a
	// hidden commit (a commit by a waiting process, Section 5.1).
	Steps  []machine.StepRecord
	Hidden []bool
	// EmptyAt[p] is the step index at which process p's command stack
	// first became empty (0 if it started empty, -1 if it never emptied).
	EmptyAt []int
	// SoloChecks counts termination checks performed (for the ablation
	// benchmarks).
	SoloChecks int
}

// decoder interprets command stacks against a machine configuration,
// implementing the paper's decoding rules D1-D3 verbatim.
type decoder struct {
	cfg    *machine.Config
	stacks []*Stack
	n      int

	steps  []machine.StepRecord
	hidden []bool

	emptyAt []int

	// Solo-termination cache: soloOK[p] is valid while othersCommits(p)
	// is unchanged since the check. A process's own steps cannot
	// invalidate its cached result (its solo run is deterministic and
	// memory only changes under commits), so only commits by other
	// processes force a re-check.
	soloOK      []bool
	soloEpoch   []int64
	soloValid   []bool
	commitsBy   []int64
	commitsAll  int64
	soloChecks  int
	soloMaxStep int
	noSoloCache bool

	// cpProc, when >= 0, triggers a snapshot when that process's stack
	// first empties; cp holds the captured snapshot. The snapshot is
	// deferred to the end of the step that emptied the stack
	// (wantSnapshot), because the decoding rules may still update other
	// stacks within the same step.
	cpProc       int
	cp           *decoder
	wantSnapshot bool

	// meter charges decode steps against the run's budget and observes
	// its context. Not part of snapshots: every (re)start of a decode
	// gets a fresh meter.
	meter *run.Meter
}

// DecodeOpts tunes the decoder. The zero value is the production
// configuration.
type DecodeOpts struct {
	// DisableSoloCache forces a fresh solo-termination check at every
	// enabledness query instead of caching results between commits by
	// other processes. Exists for the ablation benchmarks quantifying the
	// cache's value.
	DisableSoloCache bool
	// CheckpointProc, when >= 0, asks the decoder to snapshot its full
	// state at the moment this process's stack first becomes empty. The
	// encoder uses the snapshot to resume the next iteration's decode
	// without replaying the shared prefix (appending a command to the
	// bottom of that process's stack leaves the decode unchanged up to
	// exactly that point). Use -1 to disable.
	CheckpointProc int
	// Ctx cancels the decode (nil = context.Background()).
	Ctx context.Context
	// Budget bounds the decode. A zero MaxSteps installs
	// DefaultDecodeSteps(n) — the decode is finite for encoder-produced
	// stacks, so the cap only guards against malformed input; tripping it
	// now surfaces as a structured *run.BudgetError instead of a bare
	// formatted string.
	Budget run.Budget
}

// DefaultDecodeSteps is the decoder's default step cap for n processes:
// generous for every encoder-produced stack sequence, finite for malformed
// input.
func DefaultDecodeSteps(n int) int64 { return int64(1000*n*n + 1_000_000) }

// Checkpoint is a resumable decoder snapshot (see DecodeOpts.CheckpointProc).
type Checkpoint struct {
	d *decoder
}

// valid reports whether a checkpoint was actually captured.
func (cp *Checkpoint) valid() bool { return cp != nil && cp.d != nil }

// snapshot deep-copies the decoder at its current point.
func (d *decoder) snapshot() *decoder {
	c := &decoder{
		cfg:         d.cfg.Clone(),
		stacks:      make([]*Stack, d.n),
		n:           d.n,
		steps:       append([]machine.StepRecord(nil), d.steps...),
		hidden:      append([]bool(nil), d.hidden...),
		emptyAt:     append([]int(nil), d.emptyAt...),
		soloOK:      append([]bool(nil), d.soloOK...),
		soloEpoch:   append([]int64(nil), d.soloEpoch...),
		soloValid:   append([]bool(nil), d.soloValid...),
		commitsBy:   append([]int64(nil), d.commitsBy...),
		commitsAll:  d.commitsAll,
		soloChecks:  0,
		soloMaxStep: d.soloMaxStep,
		noSoloCache: d.noSoloCache,
		cpProc:      -1,
	}
	for i, s := range d.stacks {
		c.stacks[i] = s.Clone()
	}
	return c
}

// Decode expands the extended configuration (cfg; stacks) into the unique
// execution E(Γ) of the paper's Section 5.1, mutating cfg in place. The
// stacks are consumed (pass clones to preserve them).
func Decode(cfg *machine.Config, stacks []*Stack) (*DecodeResult, error) {
	return DecodeWith(cfg, stacks, DecodeOpts{})
}

// DecodeWith is Decode with explicit options. It returns the decode result
// and, when opts.CheckpointProc named a process whose stack emptied during
// the decode, a resumable checkpoint usable with ResumeDecode.
func DecodeWith(cfg *machine.Config, stacks []*Stack, opts DecodeOpts) (*DecodeResult, error) {
	opts.CheckpointProc = -1
	res, _, err := DecodeCheckpointed(cfg, stacks, opts)
	return res, err
}

// DecodeCheckpointed is DecodeWith returning the captured checkpoint.
func DecodeCheckpointed(cfg *machine.Config, stacks []*Stack, opts DecodeOpts) (*DecodeResult, *Checkpoint, error) {
	n := cfg.N()
	if len(stacks) != n {
		return nil, nil, fmt.Errorf("core: %d stacks for %d processes", len(stacks), n)
	}
	d := &decoder{
		cfg:         cfg,
		stacks:      stacks,
		n:           n,
		emptyAt:     make([]int, n),
		soloOK:      make([]bool, n),
		soloEpoch:   make([]int64, n),
		soloValid:   make([]bool, n),
		commitsBy:   make([]int64, n),
		soloMaxStep: machine.DefaultSoloLimit(n),
		noSoloCache: opts.DisableSoloCache,
		cpProc:      opts.CheckpointProc,
		meter:       newDecodeMeter(opts, n),
	}
	for p := 0; p < n; p++ {
		if stacks[p].Empty() {
			d.emptyAt[p] = 0
		} else {
			d.emptyAt[p] = -1
		}
	}
	if err := d.run(); err != nil {
		return nil, nil, err
	}
	return d.result(), &Checkpoint{d: d.cp}, nil
}

func (d *decoder) result() *DecodeResult {
	return &DecodeResult{
		Config:     d.cfg,
		Steps:      d.steps,
		Hidden:     d.hidden,
		EmptyAt:    d.emptyAt,
		SoloChecks: d.soloChecks,
	}
}

// ResumeDecode continues a checkpointed decode after cmd has been appended
// to the bottom of the checkpoint process's (then-empty) stack — the
// encoder's incremental step. The checkpoint is not consumed: it is
// re-snapshotted internally so the caller may resume from it again. The
// returned checkpoint (if requested via cpProc >= 0) reflects the new
// decode.
func ResumeDecode(cp *Checkpoint, proc int, cmd *Command, cpProc int) (*DecodeResult, *Checkpoint, error) {
	return ResumeDecodeWith(cp, proc, cmd, DecodeOpts{CheckpointProc: cpProc})
}

// ResumeDecodeWith is ResumeDecode with explicit options (context and
// budget for the resumed portion of the decode).
func ResumeDecodeWith(cp *Checkpoint, proc int, cmd *Command, opts DecodeOpts) (*DecodeResult, *Checkpoint, error) {
	if !cp.valid() {
		return nil, nil, fmt.Errorf("core: invalid checkpoint")
	}
	d := cp.d.snapshot()
	if !d.stacks[proc].Empty() {
		return nil, nil, fmt.Errorf("core: checkpoint process %d has a non-empty stack", proc)
	}
	d.stacks[proc].PushTop(&Command{Kind: cmd.Kind, K: cmd.K})
	d.emptyAt[proc] = -1
	d.cpProc = opts.CheckpointProc
	d.cp = nil
	d.meter = newDecodeMeter(opts, d.n)
	if err := d.run(); err != nil {
		return nil, nil, err
	}
	return d.result(), &Checkpoint{d: d.cp}, nil
}

// newDecodeMeter builds the meter for one decode pass, installing the
// legacy default step cap when the caller set none.
func newDecodeMeter(opts DecodeOpts, n int) *run.Meter {
	b := opts.Budget
	if b.MaxSteps == 0 {
		b.MaxSteps = DefaultDecodeSteps(n)
	}
	return run.NewMeter(opts.Ctx, b)
}

func (d *decoder) run() error {
	// The decode is finite for encoder-produced stacks; the step budget
	// (DefaultDecodeSteps unless overridden) guards against malformed
	// input, and the meter's context makes every decode cancellable.
	// The up-front Check catches already-expired contexts even when the
	// decode would finish inside one periodic-check window.
	if err := d.meter.Check(); err != nil {
		return fmt.Errorf("core: decode aborted: %w", err)
	}
	for {
		if err := d.meter.AddStep(); err != nil {
			return fmt.Errorf("core: decode aborted: %w", err)
		}
		progressed, err := d.step()
		if err != nil {
			return err
		}
		if d.wantSnapshot {
			d.wantSnapshot = false
			if d.cp == nil {
				d.cp = d.snapshot()
			}
		}
		if !progressed {
			return nil // D3: all processes waiting or finished.
		}
	}
}

// step performs one decoding step (D1 or D2); it returns false when rule D3
// applies (end of execution).
func (d *decoder) step() (bool, error) {
	// Rule D1: a commit-enabled process exists.
	if p, ok, err := d.commitEnabled(); err != nil {
		return false, err
	} else if ok {
		return true, d.commitStep(p)
	}
	// Rule D2: a non-commit-enabled process exists.
	if p, ok, err := d.nonCommitEnabled(); err != nil {
		return false, err
	} else if ok {
		return true, d.programStep(p)
	}
	// Rule D3.
	return false, nil
}

// commitEnabled returns the smallest-ID process p with top(St_p) = commit,
// next_p = fence and a non-empty write buffer.
func (d *decoder) commitEnabled() (int, bool, error) {
	for p := 0; p < d.n; p++ {
		top := d.stacks[p].Top()
		if top == nil || top.Kind != CmdCommit {
			continue
		}
		if d.cfg.Halted(p) {
			continue
		}
		op, ok, err := d.cfg.NextOp(p)
		if err != nil {
			return 0, false, err
		}
		if ok && op.Kind == lang.OpFence && d.cfg.BufferLen(p) > 0 {
			return p, true, nil
		}
	}
	return 0, false, nil
}

// nonCommitEnabled returns the smallest-ID process p with top(St_p) =
// proceed whose pending operation is permitted by the decoding rules and
// that terminates when run solo from the current configuration.
func (d *decoder) nonCommitEnabled() (int, bool, error) {
	for p := 0; p < d.n; p++ {
		top := d.stacks[p].Top()
		if top == nil || top.Kind != CmdProceed {
			continue
		}
		if d.cfg.Halted(p) {
			continue
		}
		op, ok, err := d.cfg.NextOp(p)
		if err != nil {
			return 0, false, err
		}
		if !ok {
			continue
		}
		switch op.Kind {
		case lang.OpRead, lang.OpWrite:
			// eligible, subject to solo termination below
		case lang.OpReturn:
			if op.Val != int64(d.cfg.NbFinal()) {
				continue
			}
		case lang.OpFence:
			if d.cfg.BufferLen(p) != 0 {
				continue
			}
		default:
			continue
		}
		solo, err := d.soloTerminates(p)
		if err != nil {
			return 0, false, err
		}
		if solo {
			return p, true, nil
		}
	}
	return 0, false, nil
}

// commitStep implements rule D1: process p is commit-enabled; its smallest
// buffered register R commits — by a waiting process q whose
// wait-hidden-commit write to R must be hidden first, if one exists, and by
// p itself otherwise.
func (d *decoder) commitStep(p int) error {
	regs := d.cfg.BufferRegs(p)
	r := regs[0]

	// Find the smallest-ID waiting process whose pending hidden commit
	// targets R.
	q := -1
	for i := 0; i < d.n; i++ {
		top := d.stacks[i].Top()
		if top == nil || top.Kind != CmdWaitHiddenCommit || top.K <= 0 {
			continue
		}
		if _, has := d.cfg.BufferLookup(i, r); has {
			q = i
			break
		}
	}
	pstar := p
	hidden := false
	if q >= 0 {
		pstar = q
		hidden = true
	}

	bufBefore := d.cfg.BufferLen(pstar)
	rec, took, err := d.cfg.Step(machine.PReg(pstar, r))
	if err != nil {
		return err
	}
	if !took || rec.Kind != machine.StepCommit || rec.Reg != r {
		return fmt.Errorf("core: D1 expected commit of R%d by p%d, got %v", r, pstar, rec)
	}
	d.record(rec, hidden)

	// (D1a) p completed the last write of its batch: pop commit.
	if pstar == p && bufBefore == 1 {
		d.pop(p)
	}
	// (D1b) q's hidden commit consumed one unit of wait-hidden-commit.
	if pstar == q {
		cmd := d.stacks[q].Pop()
		if cmd.K-1 > 0 {
			d.stacks[q].PushTop(&Command{Kind: CmdWaitHiddenCommit, K: cmd.K - 1})
		} else {
			d.noteEmpty(q)
		}
	}
	// (D1c) the commit accessed the segment owner's local memory.
	if owner := rec.SegOwner; owner != machine.NoOwner && owner != pstar {
		if top := d.stacks[owner].Top(); top != nil && top.Kind == CmdWaitLocalFinish {
			top.addS(pstar)
		}
	}
	return nil
}

// programStep implements rule D2: the non-commit-enabled process p performs
// its pending read, write, return or fence step.
func (d *decoder) programStep(p int) error {
	rec, took, err := d.cfg.Step(machine.PBottom(p))
	if err != nil {
		return err
	}
	if !took {
		return fmt.Errorf("core: D2 produced no step for p%d", p)
	}
	if rec.Kind == machine.StepCommit {
		return fmt.Errorf("core: D2 unexpectedly committed for p%d", p)
	}
	d.record(rec, false)

	// (D2a) pop proceed if p is now poised at a fence or return, or has
	// entered its final state.
	pop := false
	if d.cfg.Halted(p) {
		pop = true
	} else {
		op, ok, err := d.cfg.NextOp(p)
		if err != nil {
			return err
		}
		if !ok || op.Kind == lang.OpFence || op.Kind == lang.OpReturn {
			pop = true
		}
	}
	if pop {
		d.pop(p)
	}

	switch rec.Kind {
	case machine.StepReturn:
		// (D2b) processes waiting on p's termination make progress.
		for q := 0; q < d.n; q++ {
			if q == p {
				continue
			}
			top := d.stacks[q].Top()
			if top == nil {
				continue
			}
			if (top.Kind == CmdWaitReadFinish || top.Kind == CmdWaitLocalFinish) && top.inS(p) {
				cmd := d.stacks[q].Pop()
				if cmd.K-1 > 0 {
					d.stacks[q].PushTop(&Command{Kind: cmd.Kind, K: cmd.K - 1, S: cmd.S})
				} else {
					d.noteEmpty(q)
				}
			}
		}
	case machine.StepRead:
		if rec.FromMemory {
			// (D2c) p read a register some waiting process is about to
			// commit to.
			for q := 0; q < d.n; q++ {
				if q == p {
					continue
				}
				top := d.stacks[q].Top()
				if top == nil || top.Kind != CmdWaitReadFinish {
					continue
				}
				if _, has := d.cfg.BufferLookup(q, rec.Reg); has {
					top.addS(p)
				}
			}
			// (D2d) p accessed the segment owner's local memory.
			if owner := rec.SegOwner; owner != machine.NoOwner && owner != p {
				if top := d.stacks[owner].Top(); top != nil && top.Kind == CmdWaitLocalFinish {
					top.addS(p)
				}
			}
		}
	}
	return nil
}

// record appends a step to the decoded execution and maintains the commit
// epochs used by the solo-termination cache.
func (d *decoder) record(rec machine.StepRecord, hidden bool) {
	d.steps = append(d.steps, rec)
	d.hidden = append(d.hidden, hidden)
	if rec.Kind == machine.StepCommit {
		d.commitsAll++
		d.commitsBy[rec.P]++
	}
}

// pop removes the top of p's stack and records first-emptiness.
func (d *decoder) pop(p int) {
	d.stacks[p].Pop()
	d.noteEmpty(p)
}

func (d *decoder) noteEmpty(p int) {
	if d.stacks[p].Empty() && d.emptyAt[p] < 0 {
		d.emptyAt[p] = len(d.steps)
		if p == d.cpProc {
			d.wantSnapshot = true
		}
	}
}

// soloTerminates reports whether p enters a final state when running alone
// from the current configuration — the paper's p-only-schedule condition.
// Solo executions are deterministic, so the result is cached until some
// other process commits (the only events that can change what p observes).
func (d *decoder) soloTerminates(p int) (bool, error) {
	epoch := d.commitsAll - d.commitsBy[p]
	if !d.noSoloCache && d.soloValid[p] && d.soloEpoch[p] == epoch {
		return d.soloOK[p], nil
	}
	ok, err := soloTerminates(d.cfg, p, d.soloMaxStep)
	if err != nil {
		return false, err
	}
	d.soloChecks++
	d.soloOK[p] = ok
	d.soloEpoch[p] = epoch
	d.soloValid[p] = true
	return ok, nil
}

// soloTerminates runs p alone on a clone of c, detecting divergence by
// state-cycle detection: a solo execution is deterministic, so a repeated
// (process state, buffer, commit count) triple proves it never halts.
func soloTerminates(c *machine.Config, p int, maxSteps int) (bool, error) {
	clone := c.Clone()
	seen := make(map[string]struct{}, 64)
	commits := 0
	var b strings.Builder
	for i := 0; i < maxSteps; i++ {
		if clone.Halted(p) {
			return true, nil
		}
		b.Reset()
		if _, _, err := clone.NextOp(p); err != nil { // settle before fingerprinting
			return false, err
		}
		clone.Proc(p).AppendFingerprint(&b)
		for _, r := range clone.BufferRegs(p) {
			v, _ := clone.BufferLookup(p, r)
			fmt.Fprintf(&b, "w%d=%d,", r, v)
		}
		fmt.Fprintf(&b, "c%d", commits)
		fp := b.String()
		if _, cyc := seen[fp]; cyc {
			return false, nil
		}
		seen[fp] = struct{}{}
		rec, took, err := clone.Step(machine.PBottom(p))
		if err != nil {
			return false, err
		}
		if !took {
			return clone.Halted(p), nil
		}
		if rec.Kind == machine.StepCommit {
			commits++
		}
	}
	return false, nil
}

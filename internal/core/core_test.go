package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"tradingfences/internal/bits"
	"tradingfences/internal/lang"
	"tradingfences/internal/locks"
	"tradingfences/internal/machine"
	"tradingfences/internal/objects"
	"tradingfences/internal/perm"
)

// encoderFor builds an Encoder over Count composed with the given lock, and
// returns the Build function separately for recovery tests.
func encoderFor(t *testing.T, ctor locks.Constructor, n int) (*Encoder, func() (*machine.Config, error)) {
	t.Helper()
	lay := machine.NewLayout()
	lk, err := ctor(lay, "lk", n)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := objects.NewCount(lay, "count", lk)
	if err != nil {
		t.Fatal(err)
	}
	build := func() (*machine.Config, error) {
		return machine.NewConfig(machine.PSO, lay, obj.Programs())
	}
	return &Encoder{Build: build}, build
}

func gtCtor(f int) locks.Constructor {
	return func(l *machine.Layout, nm string, n int) (*locks.Algorithm, error) {
		return locks.NewGT(l, nm, n, f)
	}
}

// TestEncodeAllPermutationsN4 runs the full construction for every
// permutation of [4] over Count/Bakery and checks that the executions are
// distinguishable: each permutation is reproduced exactly by the decoding.
func TestEncodeAllPermutationsN4(t *testing.T) {
	enc, build := encoderFor(t, locks.NewBakery, 4)
	codes := make(map[string]string)
	perm.Enumerate(4, func(pi perm.Perm) bool {
		p := pi.Clone()
		res, err := enc.Encode(p)
		if err != nil {
			t.Fatalf("Encode(%v): %v", p, err)
		}
		// Decode the stacks on a fresh configuration and recover π.
		cfg, err := build()
		if err != nil {
			t.Fatal(err)
		}
		got, err := RecoverPermutation(cfg, res.Stacks)
		if err != nil {
			t.Fatalf("Recover(%v): %v", p, err)
		}
		if !got.Equal(p) {
			t.Fatalf("round trip: encoded %v, recovered %v", p, got)
		}
		// Record the serialized code; all 24 must be distinct.
		w := SerializeStacks(res.Stacks)
		codes[fmt.Sprintf("%x:%d", w.Bytes(), w.Len())] = p.String()
		return true
	})
	if len(codes) != 24 {
		t.Fatalf("only %d distinct codes for 24 permutations", len(codes))
	}
}

// TestEncodeRandomPermutations round-trips random permutations across the
// lock family at moderate n.
func TestEncodeRandomPermutations(t *testing.T) {
	cases := []struct {
		name string
		ctor locks.Constructor
		n    int
	}{
		{"bakery8", locks.NewBakery, 8},
		{"gt2-9", gtCtor(2), 9},
		{"gt3-8", gtCtor(3), 8},
		{"tournament8", locks.NewTournament, 8},
	}
	rng := rand.New(rand.NewSource(5))
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			enc, build := encoderFor(t, c.ctor, c.n)
			for trial := 0; trial < 3; trial++ {
				pi := perm.Random(c.n, rng)
				res, err := enc.Encode(pi)
				if err != nil {
					t.Fatalf("Encode(%v): %v", pi, err)
				}
				cfg, err := build()
				if err != nil {
					t.Fatal(err)
				}
				got, err := RecoverPermutation(cfg, res.Stacks)
				if err != nil {
					t.Fatalf("Recover(%v): %v", pi, err)
				}
				if !got.Equal(pi) {
					t.Fatalf("round trip: %v -> %v", pi, got)
				}
			}
		})
	}
}

// TestSerializationRoundTrip checks the bit-exact stack codec against the
// measured BitLen.
func TestSerializationRoundTrip(t *testing.T) {
	enc, _ := encoderFor(t, locks.NewBakery, 6)
	pi := perm.Perm{3, 0, 5, 1, 4, 2}
	res, err := enc.Encode(pi)
	if err != nil {
		t.Fatal(err)
	}
	m := Measure(res)
	w := SerializeStacks(res.Stacks)
	if w.Len() != m.BitLen {
		t.Fatalf("serialized %d bits, Measure reported %d", w.Len(), m.BitLen)
	}
	back, err := DeserializeStacks(bits.NewReader(w.Bytes(), w.Len()), len(pi))
	if err != nil {
		t.Fatal(err)
	}
	for p := range back {
		if back[p].Len() != res.Stacks[p].Len() {
			t.Fatalf("stack %d: %d commands after round trip, want %d", p, back[p].Len(), res.Stacks[p].Len())
		}
		for i := 0; i < back[p].Len(); i++ {
			a, b := back[p].At(i), res.Stacks[p].At(i)
			if a.Kind != b.Kind || a.K != b.K {
				t.Fatalf("stack %d cmd %d: %v != %v", p, i, a, b)
			}
		}
	}
}

// TestDeserializedStacksDecode feeds the deserialized (bit-level) stacks to
// the decoder and recovers the permutation — the complete code path of the
// counting argument: π → stacks → bits → stacks → execution → π.
func TestDeserializedStacksDecode(t *testing.T) {
	enc, build := encoderFor(t, gtCtor(2), 6)
	pi := perm.Perm{5, 2, 0, 4, 1, 3}
	res, err := enc.Encode(pi)
	if err != nil {
		t.Fatal(err)
	}
	w := SerializeStacks(res.Stacks)
	back, err := DeserializeStacks(bits.NewReader(w.Bytes(), w.Len()), len(pi))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := build()
	if err != nil {
		t.Fatal(err)
	}
	got, err := RecoverPermutation(cfg, back)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(pi) {
		t.Fatalf("bit-level round trip: %v -> %v", pi, got)
	}
}

// TestTable1OnlyFiveCommands asserts the encoder emits exactly the command
// vocabulary of the paper's Table 1, with parameters only where Table 1
// has them.
func TestTable1OnlyFiveCommands(t *testing.T) {
	enc, _ := encoderFor(t, locks.NewTournament, 6)
	res, err := enc.Encode(perm.Perm{2, 4, 0, 5, 3, 1})
	if err != nil {
		t.Fatal(err)
	}
	for p, s := range res.Stacks {
		for i := 0; i < s.Len(); i++ {
			cmd := s.At(i)
			switch cmd.Kind {
			case CmdProceed, CmdCommit:
				if cmd.K != 0 {
					t.Errorf("stack %d: %v carries a parameter", p, cmd)
				}
			case CmdWaitHiddenCommit, CmdWaitReadFinish, CmdWaitLocalFinish:
				if cmd.K < 1 {
					t.Errorf("stack %d: %v has parameter < 1", p, cmd)
				}
				if len(cmd.S) != 0 {
					t.Errorf("stack %d: encoder emitted non-empty S in %v", p, cmd)
				}
			default:
				t.Errorf("stack %d: unknown command kind %v", p, cmd.Kind)
			}
		}
	}
}

// TestHiddenCommitsExercised: the scratch-count object writes a shared
// register that earlier processes overwrite and nobody reads; the
// construction must hide those writes via wait-hidden-commit commands, and
// the decode must contain actual hidden commit steps.
func TestHiddenCommitsExercised(t *testing.T) {
	// The tournament lock is the right substrate: unlike Bakery, whose
	// wait-local-finish makes every later process wait for all earlier
	// ones (every process scans C[p]/T[p]), only the sibling accesses a
	// tournament process's segment, so a later process can race ahead and
	// buffer its scratch write while earlier processes still run.
	lay := machine.NewLayout()
	lk, err := locks.NewTournament(lay, "lk", 4)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := objects.NewScratchCount(lay, "scount", lk)
	if err != nil {
		t.Fatal(err)
	}
	build := func() (*machine.Config, error) {
		return machine.NewConfig(machine.PSO, lay, obj.Programs())
	}
	enc := &Encoder{Build: build}
	sawWHC := false
	perm.Enumerate(4, func(pi perm.Perm) bool {
		p := pi.Clone()
		res, err := enc.Encode(p)
		if err != nil {
			t.Fatalf("Encode(%v): %v", p, err)
		}
		// Round trip must hold with hidden commits in play.
		cfg, err := build()
		if err != nil {
			t.Fatal(err)
		}
		got, err := RecoverPermutation(cfg, res.Stacks)
		if err != nil {
			t.Fatalf("Recover(%v): %v", p, err)
		}
		if !got.Equal(p) {
			t.Fatalf("round trip with hidden commits: %v -> %v", p, got)
		}
		m := Measure(res)
		if m.PerKind[CmdWaitHiddenCommit] > 0 {
			if m.HiddenCommits == 0 {
				t.Fatalf("%v: WHC commands but no hidden commits in the decode", p)
			}
			sawWHC = true
		}
		return true
	})
	if !sawWHC {
		t.Fatal("no permutation of the scratch-count object used wait-hidden-commit")
	}
}

// TestWaitLocalFinishExercised: with Bakery, earlier processes read C[p]
// and T[p] — registers in p's segment — before p starts, so E1 must fire.
// Wait-read-finish fires for the tournament object, whose later processes
// race ahead to unowned node registers that earlier processes then read.
func TestWaitLocalFinishExercised(t *testing.T) {
	enc, _ := encoderFor(t, locks.NewBakery, 4)
	res, err := enc.Encode(perm.Identity(4))
	if err != nil {
		t.Fatal(err)
	}
	m := Measure(res)
	if m.PerKind[CmdWaitLocalFinish] == 0 {
		t.Fatal("Bakery encoding used no wait-local-finish commands")
	}
}

func TestWaitReadFinishExercised(t *testing.T) {
	enc, _ := encoderFor(t, locks.NewTournament, 4)
	sawWRF := false
	perm.Enumerate(4, func(pi perm.Perm) bool {
		res, err := enc.Encode(pi.Clone())
		if err != nil {
			t.Fatalf("Encode(%v): %v", pi, err)
		}
		if Measure(res).PerKind[CmdWaitReadFinish] > 0 {
			sawWRF = true
			return false
		}
		return true
	})
	if !sawWRF {
		t.Fatal("no permutation of the tournament object used wait-read-finish")
	}
}

// TestStackStructureInvariants checks Lemma 5.1 (I4) and (I10) on final
// stacks: at most one wait-local-finish per stack, only at the top; below
// a wait-read-finish only commit; below a wait-hidden-commit only
// wait-read-finish, proceed or commit; below a commit only proceed.
func TestStackStructureInvariants(t *testing.T) {
	subjects := []struct {
		name string
		ctor locks.Constructor
		n    int
	}{
		{"bakery", locks.NewBakery, 6},
		{"tournament", locks.NewTournament, 6},
		{"gt2", gtCtor(2), 6},
	}
	rng := rand.New(rand.NewSource(9))
	for _, sub := range subjects {
		t.Run(sub.name, func(t *testing.T) {
			enc, _ := encoderFor(t, sub.ctor, sub.n)
			for trial := 0; trial < 3; trial++ {
				pi := perm.Random(sub.n, rng)
				res, err := enc.Encode(pi)
				if err != nil {
					t.Fatal(err)
				}
				for p, s := range res.Stacks {
					if err := CheckStackInvariants(s); err != nil {
						t.Errorf("π=%v stack %d: %v\n%s", pi, p, err, s)
					}
				}
			}
		})
	}
}

// TestMeasurementConsistency cross-checks Measure against direct stack
// inspection.
func TestMeasurementConsistency(t *testing.T) {
	enc, _ := encoderFor(t, locks.NewBakery, 5)
	res, err := enc.Encode(perm.Perm{4, 2, 0, 3, 1})
	if err != nil {
		t.Fatal(err)
	}
	m := Measure(res)
	if m.Commands != res.Iterations {
		t.Errorf("commands %d != iterations %d (one command per iteration)", m.Commands, res.Iterations)
	}
	var v int64
	var cnt int
	for _, s := range res.Stacks {
		v += s.Value()
		cnt += s.Len()
	}
	if v != m.ParamSum || cnt != m.Commands {
		t.Errorf("Measure: v=%d m=%d, direct: v=%d m=%d", m.ParamSum, m.Commands, v, cnt)
	}
	if m.Fences <= 0 || m.RMRs <= 0 || m.Steps <= 0 {
		t.Errorf("non-positive costs: %+v", m)
	}
	if m.Bound <= 0 || m.TheoremLHS <= 0 {
		t.Errorf("non-positive bound values: %+v", m)
	}
}

// TestCommandCountTracksFences: (I4)+(I10) imply the number of commands is
// O(fences + n); check the concrete ratio stays bounded across sizes.
func TestCommandCountTracksFences(t *testing.T) {
	for _, n := range []int{4, 8, 16} {
		enc, _ := encoderFor(t, locks.NewBakery, n)
		res, err := enc.Encode(perm.Identity(n))
		if err != nil {
			t.Fatal(err)
		}
		m := Measure(res)
		limit := 4*m.Fences + 8*int64(n)
		if int64(m.Commands) > limit {
			t.Errorf("n=%d: %d commands for %d fences (limit %d)", n, m.Commands, m.Fences, limit)
		}
	}
}

// TestParamSumTracksRMRs: the sum of command parameters is O(RMRs + n).
func TestParamSumTracksRMRs(t *testing.T) {
	for _, n := range []int{4, 8, 16} {
		enc, _ := encoderFor(t, locks.NewBakery, n)
		res, err := enc.Encode(perm.Reverse(n))
		if err != nil {
			t.Fatal(err)
		}
		m := Measure(res)
		limit := 6*m.RMRs + 8*int64(n)
		if m.ParamSum > limit {
			t.Errorf("n=%d: param sum %d for %d RMRs (limit %d)", n, m.ParamSum, m.RMRs, limit)
		}
	}
}

// TestCodeLengthRespectsEntropy: the bit-exact code must be at least
// log2(n!) bits for SOME permutation (pigeonhole); since our code is
// deterministic per permutation, check that the maximum over a sample
// exceeds the entropy bound's leading term — and that the paper's bound
// expression dominates the measured code length up to a constant.
func TestCodeLengthRespectsEntropy(t *testing.T) {
	n := 8
	enc, _ := encoderFor(t, locks.NewBakery, n)
	rng := rand.New(rand.NewSource(17))
	var maxBits int
	for trial := 0; trial < 6; trial++ {
		pi := perm.Random(n, rng)
		res, err := enc.Encode(pi)
		if err != nil {
			t.Fatal(err)
		}
		m := Measure(res)
		if m.BitLen > maxBits {
			maxBits = m.BitLen
		}
		// Equation 7: the code length is O(m·(log(v/m)+1) + n). Allow a
		// generous constant.
		limit := 16*m.Bound + 16*float64(n)
		if float64(m.BitLen) > limit {
			t.Errorf("π=%v: %d bits exceeds bound %f", pi, m.BitLen, limit)
		}
	}
	if float64(maxBits) < perm.Log2Factorial(n) {
		t.Errorf("max code length %d bits below entropy %f — codes cannot be injective",
			maxBits, perm.Log2Factorial(n))
	}
}

// TestEncoderRejectsWrongInputs covers the error paths.
func TestEncoderRejectsWrongInputs(t *testing.T) {
	enc, _ := encoderFor(t, locks.NewBakery, 4)
	if _, err := enc.Encode(perm.Perm{0, 0, 1, 2}); err == nil {
		t.Error("invalid permutation accepted")
	}
	if _, err := enc.Encode(perm.Identity(3)); err == nil {
		t.Error("wrong-size permutation accepted")
	}
	// Non-PSO configurations are rejected.
	lay := machine.NewLayout()
	lk, err := locks.NewBakery(lay, "lk", 3)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := objects.NewCount(lay, "count", lk)
	if err != nil {
		t.Fatal(err)
	}
	encTSO := &Encoder{Build: func() (*machine.Config, error) {
		return machine.NewConfig(machine.TSO, lay, obj.Programs())
	}}
	if _, err := encTSO.Encode(perm.Identity(3)); err == nil {
		t.Error("TSO configuration accepted by encoder")
	}
}

// TestNonOrderingAlgorithmDetected: an algorithm whose processes return a
// constant cannot be ordering; the construction must fail loudly rather
// than mis-encode.
func TestNonOrderingAlgorithmDetected(t *testing.T) {
	prog := lang.NewProgram("const",
		lang.Write(lang.I(0), lang.Add(lang.PID(), lang.I(1))),
		lang.Fence(),
		lang.Return(lang.I(0)), // everyone returns 0
	)
	lay := machine.NewLayout()
	lay.MustAlloc("r", 4, machine.Unowned)
	progs := []*lang.Program{prog, prog, prog}
	enc := &Encoder{Build: func() (*machine.Config, error) {
		return machine.NewConfig(machine.PSO, lay, progs)
	}}
	_, err := enc.Encode(perm.Identity(3))
	if err == nil {
		t.Fatal("non-ordering algorithm encoded without error")
	}
	if !errors.Is(err, ErrNotOrdering) && !errors.Is(err, ErrNotConverged) && !errors.Is(err, ErrDecodeStuck) {
		t.Fatalf("unexpected error kind: %v", err)
	}
}

// TestOrderingObjectsEncode runs the construction over the other Section 4
// objects (fetch-and-increment, queue) — the paper's claim that the
// tradeoff extends to them.
func TestOrderingObjectsEncode(t *testing.T) {
	n := 5
	type objCtor func(lay *machine.Layout, name string, lk *locks.Algorithm) (*objects.Object, error)
	cases := map[string]objCtor{
		"fai":   objects.NewFetchAndIncrement,
		"queue": objects.NewQueueEnqueue,
	}
	for name, octor := range cases {
		t.Run(name, func(t *testing.T) {
			lay := machine.NewLayout()
			lk, err := locks.NewBakery(lay, "lk", n)
			if err != nil {
				t.Fatal(err)
			}
			obj, err := octor(lay, name, lk)
			if err != nil {
				t.Fatal(err)
			}
			enc := &Encoder{Build: func() (*machine.Config, error) {
				return machine.NewConfig(machine.PSO, lay, obj.Programs())
			}}
			pi := perm.Perm{2, 4, 1, 0, 3}
			res, err := enc.Encode(pi)
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			cfg, err := machine.NewConfig(machine.PSO, lay, obj.Programs())
			if err != nil {
				t.Fatal(err)
			}
			got, err := RecoverPermutation(cfg, res.Stacks)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(pi) {
				t.Fatalf("round trip: %v -> %v", pi, got)
			}
		})
	}
}

// TestDecodeEmptyStacks: with all-empty stacks no process may take a step;
// the decode is the empty execution (rule D3 immediately).
func TestDecodeEmptyStacks(t *testing.T) {
	_, build := encoderFor(t, locks.NewBakery, 3)
	cfg, err := build()
	if err != nil {
		t.Fatal(err)
	}
	stacks := []*Stack{{}, {}, {}}
	dec, err := Decode(cfg, stacks)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Steps) != 0 {
		t.Fatalf("empty stacks produced %d steps", len(dec.Steps))
	}
	for p := 0; p < 3; p++ {
		if dec.EmptyAt[p] != 0 {
			t.Errorf("EmptyAt[%d] = %d, want 0", p, dec.EmptyAt[p])
		}
	}
}

// TestDecodeStackCountMismatch covers the arity check.
func TestDecodeStackCountMismatch(t *testing.T) {
	_, build := encoderFor(t, locks.NewBakery, 3)
	cfg, err := build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(cfg, []*Stack{{}, {}}); err == nil {
		t.Fatal("stack/process count mismatch accepted")
	}
}

// TestTradeoffLHS covers the bound helper's edge cases.
func TestTradeoffLHS(t *testing.T) {
	if got := TradeoffLHS(0, 100); got != 0 {
		t.Errorf("TradeoffLHS(0,100) = %f", got)
	}
	if got := TradeoffLHS(4, 4); got != 4 {
		t.Errorf("TradeoffLHS(4,4) = %f, want 4 (log term clamps to 0)", got)
	}
	if got := TradeoffLHS(2, 8); got != 2*(2+1) {
		t.Errorf("TradeoffLHS(2,8) = %f, want 6", got)
	}
	// r < f clamps rather than going negative.
	if got := TradeoffLHS(8, 2); got != 8 {
		t.Errorf("TradeoffLHS(8,2) = %f, want 8", got)
	}
}

package core

import (
	"math/rand"
	"testing"

	"tradingfences/internal/bits"
	"tradingfences/internal/locks"
	"tradingfences/internal/perm"
)

// TestDecodeGarbageStacksTerminates feeds randomly generated stacks to the
// decoder: every decode must terminate (rule D3 fires once all processes
// are waiting) without error or hang, and RecoverPermutation must reject
// the incomplete executions rather than fabricate a permutation.
func TestDecodeGarbageStacksTerminates(t *testing.T) {
	_, build := encoderFor(t, locks.NewBakery, 4)
	rng := rand.New(rand.NewSource(6))
	kinds := []CmdKind{CmdProceed, CmdCommit, CmdWaitHiddenCommit, CmdWaitReadFinish, CmdWaitLocalFinish}
	for trial := 0; trial < 25; trial++ {
		stacks := make([]*Stack, 4)
		for p := range stacks {
			stacks[p] = &Stack{}
			for k := 0; k < rng.Intn(6); k++ {
				kind := kinds[rng.Intn(len(kinds))]
				cmd := &Command{Kind: kind}
				if cmd.HasParam() {
					cmd.K = 1 + rng.Intn(4)
				}
				stacks[p].AddBottom(cmd)
			}
		}
		cfg, err := build()
		if err != nil {
			t.Fatal(err)
		}
		dec, err := Decode(cfg, stacks)
		if err != nil {
			t.Fatalf("trial %d: decode errored on garbage stacks: %v", trial, err)
		}
		// Bookkeeping stays consistent even for partial executions.
		if got := int64(len(dec.Steps)); got != dec.Config.Stats().TotalSteps() {
			t.Fatalf("trial %d: %d recorded steps vs %d counted", trial, got, dec.Config.Stats().TotalSteps())
		}
	}
}

// TestRecoverRejectsGarbageStacks: permutation recovery from stacks that
// do not complete the execution must error.
func TestRecoverRejectsGarbageStacks(t *testing.T) {
	_, build := encoderFor(t, locks.NewBakery, 3)
	// One lonely proceed for process 0: it stalls at its first fence and
	// nobody else ever moves.
	stacks := []*Stack{{}, {}, {}}
	stacks[0].AddBottom(&Command{Kind: CmdProceed})
	cfg, err := build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RecoverPermutation(cfg, stacks); err == nil {
		t.Fatal("recovery succeeded on incomplete stacks")
	}
}

// TestRecoverRejectsTruncatedCode: bit-level corruption surfaces as a
// decode error, not a wrong permutation.
func TestRecoverRejectsTruncatedCode(t *testing.T) {
	enc, build := encoderFor(t, locks.NewBakery, 4)
	res, err := enc.Encode(perm.Reverse(4))
	if err != nil {
		t.Fatal(err)
	}
	w := SerializeStacks(res.Stacks)
	// Truncate the stream: deserialization must fail.
	if _, err := DeserializeStacks(bits.NewReader(w.Bytes(), w.Len()/2), 4); err == nil {
		// Truncation can land on a stack boundary; then fewer commands
		// decode but the stream must at least run out for 4 stacks.
		t.Fatal("truncated code accepted")
	}
	_ = build
}

// TestDeserializeRejectsBadTag: invalid command tags are rejected.
func TestDeserializeRejectsBadTag(t *testing.T) {
	var w bits.Writer
	w.WriteBits(7, CommandTagBits) // 7 is not a command kind
	w.WriteBits(0, CommandTagBits)
	if _, err := DeserializeStacks(bits.NewReader(w.Bytes(), w.Len()), 1); err == nil {
		t.Fatal("invalid tag accepted")
	}
}

// TestDecodeWithLeftoverCommandsKeepsStats: a decode that ends with
// unconsumed commands still reports consistent bookkeeping.
func TestDecodeWithLeftoverCommandsKeepsStats(t *testing.T) {
	_, build := encoderFor(t, locks.NewBakery, 3)
	stacks := []*Stack{{}, {}, {}}
	// wait-local-finish that can never be satisfied (no accessors exist).
	stacks[1].AddBottom(&Command{Kind: CmdWaitLocalFinish, K: 2})
	cfg, err := build()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(cfg, stacks)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Steps) != 0 {
		t.Fatalf("unsatisfiable wait produced %d steps", len(dec.Steps))
	}
	if dec.EmptyAt[1] != -1 {
		t.Fatalf("EmptyAt[1] = %d for a never-consumed stack", dec.EmptyAt[1])
	}
}

package core

import (
	"testing"

	"tradingfences/internal/locks"
	"tradingfences/internal/machine"
	"tradingfences/internal/objects"
	"tradingfences/internal/perm"
)

func benchEncoder(b *testing.B, n int) (*Encoder, func() (*machine.Config, error)) {
	b.Helper()
	lay := machine.NewLayout()
	lk, err := locks.NewBakery(lay, "lk", n)
	if err != nil {
		b.Fatal(err)
	}
	obj, err := objects.NewCount(lay, "count", lk)
	if err != nil {
		b.Fatal(err)
	}
	build := func() (*machine.Config, error) {
		return machine.NewConfig(machine.PSO, lay, obj.Programs())
	}
	return &Encoder{Build: build}, build
}

// BenchmarkEncode measures the full Section 5.2 construction.
func BenchmarkEncode(b *testing.B) {
	for _, n := range []int{8, 16} {
		b.Run(permSize(n), func(b *testing.B) {
			enc, _ := benchEncoder(b, n)
			pi := perm.Reverse(n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := enc.Encode(pi); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDecode measures a single decode of final stacks (the inner loop
// of the encoder and the whole of permutation recovery).
func BenchmarkDecode(b *testing.B) {
	enc, build := benchEncoder(b, 16)
	res, err := enc.Encode(perm.Reverse(16))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg, err := build()
		if err != nil {
			b.Fatal(err)
		}
		work := make([]*Stack, len(res.Stacks))
		for j, s := range res.Stacks {
			work[j] = s.Clone()
		}
		if _, err := Decode(cfg, work); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSoloTerminates measures one solo-termination check with cycle
// detection, the decoder's hot auxiliary.
func BenchmarkSoloTerminates(b *testing.B) {
	_, build := benchEncoder(b, 16)
	cfg, err := build()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := soloTerminates(cfg, 0, machine.DefaultSoloLimit(16))
		if err != nil || !ok {
			b.Fatalf("solo: %v %v", ok, err)
		}
	}
}

// BenchmarkSerializeStacks measures the bit-exact codec.
func BenchmarkSerializeStacks(b *testing.B) {
	enc, _ := benchEncoder(b, 16)
	res, err := enc.Encode(perm.Identity(16))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SerializeStacks(res.Stacks)
	}
}

func permSize(n int) string {
	if n == 8 {
		return "n=8"
	}
	return "n=16"
}

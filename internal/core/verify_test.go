package core

import (
	"math/rand"
	"testing"

	"tradingfences/internal/locks"
	"tradingfences/internal/machine"
	"tradingfences/internal/objects"
	"tradingfences/internal/perm"
)

// TestEncoderVerifyMode runs the construction with per-iteration
// validation of Lemma 5.1 ((I1), (I2), (I4), (I6), (I10)) and Claim 5.2.
// A failure here means the implementation of the decoding or encoding
// rules diverged from the paper's.
func TestEncoderVerifyMode(t *testing.T) {
	subjects := []struct {
		name string
		ctor locks.Constructor
		n    int
	}{
		{"bakery", locks.NewBakery, 6},
		{"tournament", locks.NewTournament, 5},
		{"gt2", gtCtor(2), 6},
	}
	rng := rand.New(rand.NewSource(21))
	for _, sub := range subjects {
		t.Run(sub.name, func(t *testing.T) {
			enc, _ := encoderFor(t, sub.ctor, sub.n)
			enc.Verify = true
			pis := []perm.Perm{
				perm.Identity(sub.n),
				perm.Reverse(sub.n),
				perm.Random(sub.n, rng),
			}
			for _, pi := range pis {
				if _, err := enc.Encode(pi); err != nil {
					t.Fatalf("π=%v: %v", pi, err)
				}
			}
		})
	}
}

// TestConstructedExecutionsPassAudit: the executions E_π built by the
// Section 5.2 construction must obey the machine's write-buffer discipline
// (independent shadow-buffer audit).
func TestConstructedExecutionsPassAudit(t *testing.T) {
	subjects := []struct {
		name string
		ctor locks.Constructor
		n    int
	}{
		{"bakery", locks.NewBakery, 6},
		{"tournament", locks.NewTournament, 5},
		{"gt2", gtCtor(2), 6},
	}
	rng := rand.New(rand.NewSource(51))
	for _, sub := range subjects {
		t.Run(sub.name, func(t *testing.T) {
			enc, _ := encoderFor(t, sub.ctor, sub.n)
			for trial := 0; trial < 3; trial++ {
				pi := perm.Random(sub.n, rng)
				res, err := enc.Encode(pi)
				if err != nil {
					t.Fatal(err)
				}
				tr := &machine.Trace{Steps: res.Final.Steps}
				if err := machine.AuditTrace(tr, machine.PSO, sub.n); err != nil {
					t.Fatalf("π=%v: %v", pi, err)
				}
			}
		})
	}
}

// TestEncoderVerifyWithHiddenCommits runs verification on the stressor
// that exercises the hidden-commit decoding path.
func TestEncoderVerifyWithHiddenCommits(t *testing.T) {
	lay := machine.NewLayout()
	lk, err := locks.NewTournament(lay, "lk", 5)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := objects.NewScratchCount(lay, "scount", lk)
	if err != nil {
		t.Fatal(err)
	}
	enc := &Encoder{
		Build: func() (*machine.Config, error) {
			return machine.NewConfig(machine.PSO, lay, obj.Programs())
		},
		Verify: true,
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 5; trial++ {
		pi := perm.Random(5, rng)
		if _, err := enc.Encode(pi); err != nil {
			t.Fatalf("π=%v: %v", pi, err)
		}
	}
}

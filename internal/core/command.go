// Package core implements the paper's primary contribution: the
// information-theoretic machinery of Section 5 that proves the fence/RMR
// tradeoff. For every permutation π of the processes it constructs a unique
// execution E_π of an ordering algorithm (Section 5.2's encoding) in which
// process p_i returns i, represented as per-process command stacks over the
// five commands of Table 1; a decoder (Section 5.1's rules D1-D3) expands
// the stacks back into the execution. The code length of the stacks —
// O(commands) entries whose parameters sum to O(RMRs) — realizes the bound
//
//	β(E)·(log(ρ(E)/β(E)) + 1) ∈ Ω(n log n),
//
// which the experiment harness checks against the measured β and ρ.
package core

import (
	"fmt"
	"strings"
)

// CmdKind enumerates the five commands of the paper's Table 1.
type CmdKind int

// Command kinds.
const (
	// CmdProceed lets the process take steps until it is poised at a
	// fence with a non-empty write buffer (or at its return).
	CmdProceed CmdKind = iota + 1
	// CmdCommit lets the process commit all writes in its buffer.
	CmdCommit
	// CmdWaitHiddenCommit(k) holds the process until k of its buffered
	// write steps have been committed "hidden" — immediately overwritten
	// by commits of earlier processes before anyone reads them.
	CmdWaitHiddenCommit
	// CmdWaitReadFinish(k, S) holds the process until k earlier processes
	// that read registers in its write buffer have finished.
	CmdWaitReadFinish
	// CmdWaitLocalFinish(k, S) holds the process until k earlier processes
	// that accessed its memory segment have finished.
	CmdWaitLocalFinish
)

func (k CmdKind) String() string {
	switch k {
	case CmdProceed:
		return "proceed"
	case CmdCommit:
		return "commit"
	case CmdWaitHiddenCommit:
		return "wait-hidden-commit"
	case CmdWaitReadFinish:
		return "wait-read-finish"
	case CmdWaitLocalFinish:
		return "wait-local-finish"
	default:
		return fmt.Sprintf("CmdKind(%d)", int(k))
	}
}

// Command is one stack entry. K is the integer parameter of the three
// wait-commands (always ≥ 1 when pushed by the encoder); S is the process
// set the decoder accumulates at run time (always empty in encoder output,
// exactly as in the paper's construction).
type Command struct {
	Kind CmdKind
	K    int
	S    map[int]struct{}
}

// Value returns the command's contribution to the code-length accounting of
// Section 5.3: 1 for proceed and commit, K for the parameterized commands.
func (c *Command) Value() int64 {
	switch c.Kind {
	case CmdProceed, CmdCommit:
		return 1
	default:
		return int64(c.K)
	}
}

// HasParam reports whether the command carries an integer parameter.
func (c *Command) HasParam() bool {
	return c.Kind == CmdWaitHiddenCommit || c.Kind == CmdWaitReadFinish || c.Kind == CmdWaitLocalFinish
}

func (c *Command) addS(p int) {
	if c.S == nil {
		c.S = make(map[int]struct{}, 4)
	}
	c.S[p] = struct{}{}
}

func (c *Command) inS(p int) bool {
	_, ok := c.S[p]
	return ok
}

func (c *Command) String() string {
	switch c.Kind {
	case CmdProceed, CmdCommit:
		return c.Kind.String()
	case CmdWaitHiddenCommit:
		return fmt.Sprintf("wait-hidden-commit(%d)", c.K)
	default:
		if len(c.S) == 0 {
			return fmt.Sprintf("%s(%d)", c.Kind, c.K)
		}
		return fmt.Sprintf("%s(%d,|S|=%d)", c.Kind, c.K, len(c.S))
	}
}

// Stack is one process's command stack. The slice's last element is the
// top (the next command to be consumed); the encoder appends new commands
// at the bottom (index 0), which the decoder reaches last.
type Stack struct {
	cmds []*Command
}

// Len returns the number of commands on the stack.
func (s *Stack) Len() int { return len(s.cmds) }

// Empty reports whether the stack has no commands.
func (s *Stack) Empty() bool { return len(s.cmds) == 0 }

// Top returns the top command, or nil if the stack is empty.
func (s *Stack) Top() *Command {
	if len(s.cmds) == 0 {
		return nil
	}
	return s.cmds[len(s.cmds)-1]
}

// Pop removes and returns the top command. It panics on an empty stack;
// decoder rules only pop commands they just inspected.
func (s *Stack) Pop() *Command {
	c := s.cmds[len(s.cmds)-1]
	s.cmds = s.cmds[:len(s.cmds)-1]
	return c
}

// PushTop pushes a command on top of the stack (used by decoder rules that
// replace the top command with an updated one).
func (s *Stack) PushTop(c *Command) { s.cmds = append(s.cmds, c) }

// AddBottom inserts a command at the bottom of the stack — the encoder's
// only mutation: later-constructed commands are consumed later.
func (s *Stack) AddBottom(c *Command) {
	s.cmds = append([]*Command{c}, s.cmds...)
}

// At returns the command at depth i from the bottom (0 = bottom). Intended
// for invariant checks and reporting.
func (s *Stack) At(i int) *Command { return s.cmds[i] }

// Clone returns a deep copy (commands and their S sets).
func (s *Stack) Clone() *Stack {
	c := &Stack{cmds: make([]*Command, len(s.cmds))}
	for i, cmd := range s.cmds {
		cp := &Command{Kind: cmd.Kind, K: cmd.K}
		if len(cmd.S) > 0 {
			cp.S = make(map[int]struct{}, len(cmd.S))
			for p := range cmd.S {
				cp.S[p] = struct{}{}
			}
		}
		c.cmds[i] = cp
	}
	return c
}

// Value returns the sum of command values on the stack.
func (s *Stack) Value() int64 {
	var v int64
	for _, c := range s.cmds {
		v += c.Value()
	}
	return v
}

func (s *Stack) String() string {
	if len(s.cmds) == 0 {
		return "[]"
	}
	parts := make([]string, 0, len(s.cmds))
	// Print top to bottom (consumption order).
	for i := len(s.cmds) - 1; i >= 0; i-- {
		parts = append(parts, s.cmds[i].String())
	}
	return "[" + strings.Join(parts, " ") + "]"
}

package core

import (
	"fmt"
	"math/rand"
	"testing"

	"tradingfences/internal/locks"
	"tradingfences/internal/machine"
	"tradingfences/internal/objects"
	"tradingfences/internal/perm"
)

// TestCheckpointEquivalence: the checkpoint-resumed construction must
// produce bit-identical encodings to the full re-decode construction, for
// every lock family and a spread of permutations.
func TestCheckpointEquivalence(t *testing.T) {
	subjects := []struct {
		name string
		ctor locks.Constructor
		n    int
	}{
		{"bakery", locks.NewBakery, 7},
		{"tournament", locks.NewTournament, 6},
		{"gt2", gtCtor(2), 7},
	}
	rng := rand.New(rand.NewSource(44))
	for _, sub := range subjects {
		t.Run(sub.name, func(t *testing.T) {
			pis := []perm.Perm{
				perm.Identity(sub.n),
				perm.Reverse(sub.n),
				perm.Random(sub.n, rng),
				perm.Random(sub.n, rng),
			}
			for _, pi := range pis {
				encode := func(disable bool) (string, Measurement) {
					enc, _ := encoderFor(t, sub.ctor, sub.n)
					enc.DisableCheckpoint = disable
					res, err := enc.Encode(pi)
					if err != nil {
						t.Fatalf("π=%v disable=%v: %v", pi, disable, err)
					}
					w := SerializeStacks(res.Stacks)
					return fmt.Sprintf("%x:%d", w.Bytes(), w.Len()), Measure(res)
				}
				fastCode, fastM := encode(false)
				slowCode, slowM := encode(true)
				if fastCode != slowCode {
					t.Fatalf("π=%v: checkpointed code differs from full-decode code", pi)
				}
				if fastM.Fences != slowM.Fences || fastM.RMRs != slowM.RMRs || fastM.Steps != slowM.Steps {
					t.Fatalf("π=%v: measurements diverge: %+v vs %+v", pi, fastM, slowM)
				}
			}
		})
	}
}

// TestCheckpointEquivalenceWithHiddenCommits exercises the resume path
// through the wait-hidden-commit machinery.
func TestCheckpointEquivalenceWithHiddenCommits(t *testing.T) {
	lay := machine.NewLayout()
	lk, err := locks.NewTournament(lay, "lk", 5)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := objects.NewScratchCount(lay, "scount", lk)
	if err != nil {
		t.Fatal(err)
	}
	build := func() (*machine.Config, error) {
		return machine.NewConfig(machine.PSO, lay, obj.Programs())
	}
	rng := rand.New(rand.NewSource(45))
	for trial := 0; trial < 5; trial++ {
		pi := perm.Random(5, rng)
		encode := func(disable bool) string {
			enc := &Encoder{Build: build, DisableCheckpoint: disable, Verify: true}
			res, err := enc.Encode(pi)
			if err != nil {
				t.Fatalf("π=%v disable=%v: %v", pi, disable, err)
			}
			w := SerializeStacks(res.Stacks)
			return fmt.Sprintf("%x:%d", w.Bytes(), w.Len())
		}
		if encode(false) != encode(true) {
			t.Fatalf("π=%v: divergence", pi)
		}
	}
}

// TestResumeDecodeReusable: a checkpoint can be resumed more than once
// (the encoder relies on the snapshot not being consumed).
func TestResumeDecodeReusable(t *testing.T) {
	enc, build := encoderFor(t, locks.NewBakery, 3)
	res, err := enc.Encode(perm.Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	// Build a checkpointed decode by hand: empty stacks except p0 with a
	// proceed; checkpoint for p0 triggers when its proceed pops.
	cfg, err := build()
	if err != nil {
		t.Fatal(err)
	}
	stacks := []*Stack{{}, {}, {}}
	stacks[0].PushTop(&Command{Kind: CmdProceed})
	dec, cp, err := DecodeCheckpointed(cfg, stacks, DecodeOpts{CheckpointProc: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Steps) == 0 {
		t.Fatal("no steps decoded")
	}
	if !cp.valid() {
		t.Fatal("checkpoint not captured")
	}
	r1, _, err := ResumeDecode(cp, 0, &Command{Kind: CmdCommit}, -1)
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := ResumeDecode(cp, 0, &Command{Kind: CmdCommit}, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Steps) != len(r2.Steps) {
		t.Fatalf("re-resume diverged: %d vs %d steps", len(r1.Steps), len(r2.Steps))
	}
}

// TestResumeDecodeErrors covers the misuse paths.
func TestResumeDecodeErrors(t *testing.T) {
	if _, _, err := ResumeDecode(&Checkpoint{}, 0, &Command{Kind: CmdProceed}, -1); err == nil {
		t.Error("invalid checkpoint accepted")
	}
	_, build := encoderFor(t, locks.NewBakery, 2)
	cfg, err := build()
	if err != nil {
		t.Fatal(err)
	}
	stacks := []*Stack{{}, {}}
	stacks[0].PushTop(&Command{Kind: CmdProceed})
	stacks[0].AddBottom(&Command{Kind: CmdProceed}) // two commands: never empties after first pop? it does eventually
	_, cp, err := DecodeCheckpointed(cfg, stacks, DecodeOpts{CheckpointProc: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Process 1's stack was empty from the start: no pop ever occurs, so
	// no checkpoint is captured.
	if cp.valid() {
		t.Error("checkpoint captured for a stack that never popped")
	}
}

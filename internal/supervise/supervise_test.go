package supervise

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tradingfences/internal/check"
	"tradingfences/internal/locks"
	"tradingfences/internal/machine"
	"tradingfences/internal/run"
)

func bg() context.Context { return context.Background() }

func mustSubject(t *testing.T, name string, ctor locks.Constructor, n int) *check.Subject {
	t.Helper()
	s, err := check.NewMutexSubject(name, ctor, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func requireSameResult(t *testing.T, what string, a, b check.Result) {
	t.Helper()
	if a.Violation != b.Violation || a.Complete != b.Complete {
		t.Fatalf("%s: verdict mismatch: (viol=%v complete=%v) vs (viol=%v complete=%v)",
			what, a.Violation, a.Complete, b.Violation, b.Complete)
	}
	if a.States != b.States {
		t.Fatalf("%s: states mismatch: %d vs %d", what, a.States, b.States)
	}
	if a.Witness.String() != b.Witness.String() {
		t.Fatalf("%s: witness mismatch: %q vs %q", what, a.Witness, b.Witness)
	}
}

// requireSameVerdict is the multi-worker comparison: verdicts must agree
// exactly and complete runs must cover the same state count, but which
// violation witness is found first is scheduling-dependent at >1 workers —
// so a witness is only required to replay to a real co-residency, not to
// match schedule-for-schedule.
func requireSameVerdict(t *testing.T, what string, s *check.Subject, m machine.Model, a, b check.Result) {
	t.Helper()
	if a.Violation != b.Violation || a.Complete != b.Complete {
		t.Fatalf("%s: verdict mismatch: (viol=%v complete=%v) vs (viol=%v complete=%v)",
			what, a.Violation, a.Complete, b.Violation, b.Complete)
	}
	if b.Complete && a.States != b.States {
		t.Fatalf("%s: complete-run states mismatch: %d vs %d", what, a.States, b.States)
	}
	if a.Violation {
		_, cfg, err := s.Replay(m, a.Witness, nil)
		if err != nil {
			t.Fatalf("%s: witness does not replay: %v", what, err)
		}
		in := 0
		for p := 0; p < cfg.N(); p++ {
			ok, err := s.InCS(cfg, p)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				in++
			}
		}
		if in < 2 {
			t.Fatalf("%s: witness replays to %d processes in the critical section", what, in)
		}
	}
}

// A clean supervised run is exactly one attempt and reproduces the direct
// parallel explorer bit for bit, for both a proof and a violation.
func TestSupervisedCleanMatchesDirect(t *testing.T) {
	cases := []struct {
		name string
		ctor locks.Constructor
	}{
		{"bakery", locks.NewBakery},
		{"bakery-tso", locks.NewBakeryTSO},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := mustSubject(t, tc.name, tc.ctor, 2)
			direct, err := s.ExhaustiveParallel(bg(), machine.PSO, check.Opts{Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			out, err := CheckMutex(bg(), s, machine.PSO, Options{Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			if out.Mode != ModeExhaustive {
				t.Fatalf("mode = %q, want exhaustive", out.Mode)
			}
			if len(out.Attempts) != 1 {
				t.Fatalf("attempts = %d, want 1", len(out.Attempts))
			}
			if out.Attempts[0].Err != "" || out.Attempts[0].CheckpointRejected != "" {
				t.Fatalf("clean attempt reported trouble: %+v", out.Attempts[0])
			}
			requireSameVerdict(t, tc.name, s, machine.PSO, out.Result, direct)
		})
	}
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		name          string
		err           error
		checkpointing bool
		want          bool
	}{
		{"worker kill", &check.WorkerError{Level: 3, Worker: 1, Err: errors.New("chaos")}, false, true},
		{"worker cancelled", &check.WorkerError{Err: context.Canceled}, true, false},
		{"states trip", &run.BudgetError{Resource: "states", Limit: 10, Used: 11}, false, true},
		{"memory trip", &run.BudgetError{Resource: "memory", Limit: 10, Used: 11}, false, true},
		{"wall trip, checkpointing", &run.BudgetError{Resource: "wall"}, true, true},
		{"wall trip, no checkpoint", &run.BudgetError{Resource: "wall"}, false, false},
		{"steps trip", &run.BudgetError{Resource: "steps", Limit: 10, Used: 11}, false, false},
		{"plain error", errors.New("machine: stuck"), true, false},
	}
	for _, tc := range cases {
		if got := retryable(tc.err, tc.checkpointing); got != tc.want {
			t.Errorf("%s: retryable = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestGrowBudget(t *testing.T) {
	b := run.Budget{MaxSteps: 100, MaxStates: 50, MaxWall: time.Second}
	g := growBudget(b, 2)
	if g.MaxSteps != 200 || g.MaxStates != 100 || g.MaxWall != 2*time.Second {
		t.Fatalf("grown budget = %+v", g)
	}
	if g.MaxMemEstimate != 0 {
		t.Fatal("unlimited resource became bounded")
	}
}

// Exhausting the ladder on a proof subject must end in a degraded
// randomized verdict that (correctly) finds nothing, with the attempt
// reports showing the escalation: budgets growing, workers descending,
// exponential backoff between attempts.
func TestLadderExhaustionDegrades(t *testing.T) {
	s := mustSubject(t, "bakery", locks.NewBakery, 2)
	var sleeps []time.Duration
	out, err := CheckMutex(bg(), s, machine.PSO, Options{
		Workers:     4,
		Budget:      run.Budget{MaxStates: 40},
		MaxAttempts: 3,
		BackoffBase: time.Millisecond,
		Sleep:       func(d time.Duration) { sleeps = append(sleeps, d) },
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Mode != ModeDegraded {
		t.Fatalf("mode = %q, want degraded", out.Mode)
	}
	if len(out.Attempts) != 3 {
		t.Fatalf("attempts = %d, want 3", len(out.Attempts))
	}
	for i, a := range out.Attempts {
		if a.Err == "" {
			t.Fatalf("attempt %d did not trip: %+v", i, a)
		}
	}
	// Budget grows every rung; workers shrink past the midpoint.
	if out.Attempts[1].Budget.MaxStates <= out.Attempts[0].Budget.MaxStates ||
		out.Attempts[2].Budget.MaxStates <= out.Attempts[1].Budget.MaxStates {
		t.Fatalf("budget did not escalate: %+v", out.Attempts)
	}
	if out.Attempts[2].Workers >= out.Attempts[0].Workers {
		t.Fatalf("workers did not descend: %+v", out.Attempts)
	}
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond}
	if len(sleeps) != len(want) {
		t.Fatalf("backoffs = %v, want %v", sleeps, want)
	}
	for i := range want {
		if sleeps[i] != want[i] {
			t.Fatalf("backoffs = %v, want %v", sleeps, want)
		}
	}
	if out.Fallback.Violation {
		t.Fatal("degraded fallback refuted a correct lock")
	}
}

// The degraded fallback still catches real violations: a fenceless
// Peterson under TSO is refuted by the randomized search even though every
// exhaustive attempt tripped its (tiny) budget first.
func TestDegradedFallbackRefutes(t *testing.T) {
	s := mustSubject(t, "peterson-nofence", locks.NewPetersonNoFence, 2)
	out, err := CheckMutex(bg(), s, machine.TSO, Options{
		Workers:     2,
		Budget:      run.Budget{MaxStates: 3},
		MaxAttempts: 2,
		BackoffBase: time.Microsecond,
		Sleep:       func(time.Duration) {},
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Mode != ModeDegraded {
		t.Fatalf("mode = %q, want degraded", out.Mode)
	}
	if !out.Fallback.Violation {
		t.Fatal("randomized fallback missed the TSO violation")
	}
	if _, _, err := s.Replay(machine.TSO, out.Fallback.Witness, nil); err != nil {
		t.Fatalf("fallback witness does not replay: %v", err)
	}
}

// Cancellation is never retried: the supervisor returns the context error
// after a single attempt instead of burning the ladder.
func TestCancellationNotRetried(t *testing.T) {
	s := mustSubject(t, "bakery", locks.NewBakery, 2)
	ctx, cancel := context.WithCancel(bg())
	cancel()
	out, err := CheckMutex(ctx, s, machine.PSO, Options{Workers: 2, MaxAttempts: 5})
	if err == nil {
		t.Fatal("cancelled run succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(out.Attempts) != 1 {
		t.Fatalf("cancelled run retried: %d attempts", len(out.Attempts))
	}
}

// With Options.Resume, a checkpoint left behind by an unrelated subject is
// rejected at resume (identity drift) and the supervisor restarts fresh on
// the same attempt, still reaching the right verdict.
func TestForeignCheckpointRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	// Produce a valid checkpoint for bakery-tso by killing a run mid-way
	// (one-state cadence: the first snapshot generation arrives before the
	// violation can, so the gen-keyed kill is deterministic).
	donor := mustSubject(t, "bakery-tso", locks.NewBakeryTSO, 2)
	kill := func(gen, worker int) error {
		if gen >= 1 {
			return errors.New("chaos")
		}
		return nil
	}
	if _, err := donor.ExhaustiveParallel(bg(), machine.PSO, check.Opts{
		Workers: 2, WorkerFault: kill,
		Checkpoint: &check.CheckpointPolicy{Path: path, EveryStates: 1},
	}); err == nil {
		t.Fatal("donor run was supposed to be killed")
	}

	s := mustSubject(t, "bakery", locks.NewBakery, 2)
	clean, err := s.ExhaustiveParallel(bg(), machine.PSO, check.Opts{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	out, err := CheckMutex(bg(), s, machine.PSO, Options{
		Workers:        2,
		CheckpointPath: path,
		Resume:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rej := out.Attempts[0].CheckpointRejected; rej == "" {
		t.Fatal("foreign checkpoint was not rejected")
	} else if !strings.Contains(rej, check.ErrCheckpointDrift.Error()) {
		t.Fatalf("rejected for %q, want identity drift", rej)
	}
	if out.Attempts[0].ResumedLevel != 0 || out.Attempts[0].VisitedReused {
		t.Fatalf("rejected checkpoint still resumed: %+v", out.Attempts[0])
	}
	requireSameResult(t, "after drift rejection", out.Result, clean)
}

// Without Options.Resume the supervised run owns the checkpoint path: a
// pre-existing snapshot — even one that would certify — is cleared before
// the first attempt rather than silently continued, and the snapshot is
// removed again once the run reaches a terminal verdict.
func TestStaleCheckpointNotResumedByDefault(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	s := mustSubject(t, "bakery", locks.NewBakery, 2)
	// Leave a certifiable snapshot of this very subject behind.
	kill := func(gen, worker int) error {
		if gen >= 1 {
			return errors.New("chaos")
		}
		return nil
	}
	if _, err := s.ExhaustiveParallel(bg(), machine.PSO, check.Opts{
		Workers: 2, WorkerFault: kill,
		Checkpoint: &check.CheckpointPolicy{Path: path, EveryStates: 1},
	}); err == nil {
		t.Fatal("donor run was supposed to be killed")
	}

	clean, err := s.ExhaustiveParallel(bg(), machine.PSO, check.Opts{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	out, err := CheckMutex(bg(), s, machine.PSO, Options{
		Workers:        2,
		CheckpointPath: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := out.Attempts[0]
	if a.ResumedLevel != 0 || a.VisitedReused || a.CheckpointRejected != "" {
		t.Fatalf("stale snapshot leaked into the fresh run: %+v", a)
	}
	// The fresh run must not double-count the donor's meter usage.
	requireSameResult(t, "fresh despite stale snapshot", out.Result, clean)
	// Terminal verdict: the snapshot is gone, so a later run at the same
	// path cannot pick it up either.
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("snapshot survived a terminal verdict: stat err = %v", err)
	}

	// With Resume the same pre-existing snapshot is honored.
	if _, err := s.ExhaustiveParallel(bg(), machine.PSO, check.Opts{
		Workers: 2, WorkerFault: kill,
		Checkpoint: &check.CheckpointPolicy{Path: path, EveryStates: 1},
	}); err == nil {
		t.Fatal("second donor run was supposed to be killed")
	}
	out, err = CheckMutex(bg(), s, machine.PSO, Options{
		Workers:        2,
		CheckpointPath: path,
		Resume:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Attempts[0].ResumedLevel == 0 || !out.Attempts[0].VisitedReused {
		t.Fatalf("Resume did not pick up the certified snapshot: %+v", out.Attempts[0])
	}
	requireSameResult(t, "explicit resume", out.Result, clean)
}

// Package supervise runs long exhaustive model-checking searches to
// completion in the presence of budget trips and worker failures. It wraps
// the parallel explorer of internal/check in a retry loop that resumes
// from the last on-disk checkpoint instead of restarting from zero, and
// escalates along a ladder when retries keep failing:
//
//	attempt 0   configured budget, configured workers
//	attempt 1+  grow the tripped budgets (×BudgetGrowth per retry)
//	later       halve the worker pool (less frontier in flight)
//	finally     degrade to a seeded randomized search (refute-only)
//
// Every attempt resumes from the newest checkpoint it can certify;
// snapshots that fail certification — corrupted bytes, truncated files,
// subject identity drift — are rejected and recorded, and the attempt
// falls back to a fresh start: the supervisor recovers when it can and
// fails closed when it cannot, but never trusts a snapshot it cannot
// certify. Exponential backoff between attempts keeps crash loops cheap.
package supervise

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"tradingfences/internal/check"
	"tradingfences/internal/machine"
	"tradingfences/internal/run"
)

// Modes of a supervised outcome.
const (
	// ModeExhaustive: the verdict comes from a completed (or violating)
	// exhaustive exploration, possibly after checkpointed retries.
	ModeExhaustive = "exhaustive"
	// ModeDegraded: every exhaustive attempt failed and the ladder ended
	// in a seeded randomized search; the verdict can refute but not prove.
	ModeDegraded = "degraded"
)

// Options configures a supervised check.
type Options struct {
	// Workers sizes the parallel explorer's pool (0 resolves to
	// runtime.NumCPU(), negative values to 1 — matching
	// check.Opts.Workers). The descent rung of the ladder halves the
	// resolved value, never below 1; attempt reports carry the resolved
	// count.
	Workers int
	// Budget bounds each attempt; the growth rung multiplies the bounded
	// resources by BudgetGrowth.
	Budget run.Budget
	// Faults is forwarded to the explorer (adversarial crash budget).
	Faults *machine.FaultPlan
	// Symmetry is forwarded to the explorer (process-symmetry reduction;
	// see check.Opts.Symmetry). Checkpoints certify the symmetry mode, so
	// resumed attempts stay consistent automatically.
	Symmetry bool
	// Reduction is forwarded to the explorer (reorder-bounded buffer
	// semantics and commit-step partial-order reduction; see
	// check.Opts.Reduction). Checkpoints certify both modes, so resumed
	// attempts stay consistent automatically. The degraded randomized
	// fallback always searches the full semantics — reductions shrink
	// exhaustive graphs, not sampled runs.
	Reduction check.Reduction

	// MaxAttempts caps the exhaustive attempts before the randomized
	// fallback (default 3; the first run counts as attempt 0).
	MaxAttempts int
	// BackoffBase is the sleep before retry k (BackoffBase << k,
	// default 50ms). Sleep is injectable for tests.
	BackoffBase time.Duration
	Sleep       func(time.Duration)
	// BudgetGrowth multiplies the tripped budget's bounded resources on
	// each escalation (default 2.0).
	BudgetGrowth float64

	// CheckpointPath enables checkpoint/resume: attempts snapshot there
	// and retries resume from the newest certified snapshot. Empty
	// disables checkpointing (retries restart from zero). The supervised
	// run owns the path: unless Resume is set, a pre-existing file there
	// is removed before the first attempt, and a snapshot whose run ends
	// in a terminal verdict (proof or violation) is removed afterwards —
	// stale state from an earlier or unrelated run is never silently
	// continued.
	CheckpointPath string
	// Resume makes the first attempt pick up a certified snapshot already
	// present at CheckpointPath (e.g. from a killed earlier process)
	// instead of clearing it. The snapshot is still re-certified —
	// identity, model and crash budget must match — before it is trusted.
	Resume bool
	// CheckpointEvery is the snapshot cadence floor in freshly interned
	// states (default 1024; see check.CheckpointPolicy.EveryStates — the
	// effective interval grows geometrically with the visited set).
	CheckpointEvery int
	// Meta is stamped into snapshots for cross-process reconstruction.
	Meta check.CheckpointMeta

	// Seed, FallbackRuns and FallbackMaxSteps size the degraded
	// randomized fallback (defaults: 2000 runs × 400 steps).
	Seed                           int64
	FallbackRuns, FallbackMaxSteps int

	// WorkerFault is the chaos hook threaded to the explorer, extended
	// with the attempt index. Nil in production.
	WorkerFault func(attempt, level, worker int) error

	// OnAttempt, when non-nil, is invoked with each attempt's completed
	// report — after the attempt ran, before any backoff sleep — so
	// long-running supervised jobs can stream their escalation ladder
	// (the daemon's per-job decision log is built from these). The
	// callback runs on the supervising goroutine; it must not block for
	// long and must not call back into the supervisor.
	OnAttempt func(Attempt)
}

func (o Options) withDefaults() Options {
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 50 * time.Millisecond
	}
	if o.Sleep == nil {
		o.Sleep = time.Sleep
	}
	if o.BudgetGrowth <= 1 {
		o.BudgetGrowth = 2
	}
	if o.FallbackRuns <= 0 {
		o.FallbackRuns = 2000
	}
	if o.FallbackMaxSteps <= 0 {
		o.FallbackMaxSteps = 400
	}
	return o
}

// Attempt reports one rung of the supervised run. The JSON names are the
// wire format of the serve daemon's job API and decision logs.
type Attempt struct {
	// Index is the attempt number (0 = first).
	Index int `json:"index"`
	// Workers and Budget are the escalated parameters in force.
	Workers int        `json:"workers"`
	Budget  run.Budget `json:"budget"`
	// ResumedLevel is the snapshot generation the attempt continued from
	// (0 = fresh start); VisitedReused whether its visited set certified.
	ResumedLevel  int  `json:"resumed_level"`
	VisitedReused bool `json:"visited_reused,omitempty"`
	// Steals, Donated, Parks, BatchLookups and Checkpoints mirror the
	// work-stealing engine's counters for this attempt
	// (check.EngineStats): whether exploration scaled or starved, and how
	// many snapshots the attempt wrote.
	Steals       int64 `json:"steals,omitempty"`
	Donated      int64 `json:"donated,omitempty"`
	Parks        int64 `json:"parks,omitempty"`
	BatchLookups int64 `json:"batch_lookups,omitempty"`
	Checkpoints  int64 `json:"checkpoints,omitempty"`
	// CheckpointRejected records why a snapshot was discarded before this
	// attempt ("" = none rejected): corrupted bytes, identity drift, etc.
	CheckpointRejected string `json:"checkpoint_rejected,omitempty"`
	// States is the visited-state count the attempt reached; Err why it
	// stopped ("" = success); Backoff the sleep that preceded it.
	States  int           `json:"states"`
	Err     string        `json:"err,omitempty"`
	Backoff time.Duration `json:"backoff_ns,omitempty"`
	// ErrKind classifies Err for decision logs — why the escalation
	// happened, not just its message: "" on success, "budget:steps",
	// "budget:states", "budget:wall" or "budget:memory" for a budget
	// trip on that resource, "worker" for a worker death, "drift" for a
	// checkpoint that failed certification, "panic" for a recovered
	// internal panic, "canceled" / "deadline" for context termination,
	// and "error" for anything else.
	ErrKind string `json:"err_kind,omitempty"`
}

// Cancellation causes. A scheduler that cancels a supervised run for its
// own reasons — preempting it onto its certified checkpoint to free a
// worker slot, or aborting it on a client's request — passes these as the
// context cancel cause so attempt reports and job outcomes say *why* the
// run stopped, not just that it was cancelled. The distinction matters
// downstream: a preempted run is re-queued resumable, an aborted one is
// terminal, and a plain cancellation is a drain.
var (
	// ErrPreempted: the run was parked on its checkpoint to yield its
	// worker slot to higher-priority work; it will be resumed as the same
	// passage (the recoverable-passage model of Chan–Woelfel).
	ErrPreempted = errors.New("supervise: preempted onto checkpoint")
	// ErrAborted: a client cancelled the job (the abortable-mutex analogy
	// of Pareek–Woelfel); the outcome is terminal.
	ErrAborted = errors.New("supervise: aborted by client")
)

// ClassifyCancel refines ClassifyErr with the context's cancellation
// cause: a "canceled" error whose cause is ErrPreempted or ErrAborted is
// reported as "preempted" or "aborted" respectively. Every other
// classification passes through unchanged.
func ClassifyCancel(ctx context.Context, err error) string {
	kind := ClassifyErr(err)
	if kind != "canceled" || ctx == nil {
		return kind
	}
	switch cause := context.Cause(ctx); {
	case errors.Is(cause, ErrPreempted):
		return "preempted"
	case errors.Is(cause, ErrAborted):
		return "aborted"
	}
	return kind
}

// ClassifyErr maps an attempt (or job) error to the ErrKind vocabulary
// above. Classification order matters: a worker killed by cancellation is
// reported as the cancellation, and a budget trip inside a worker is
// reported as the budget trip.
func ClassifyErr(err error) string {
	if err == nil {
		return ""
	}
	switch {
	case errors.Is(err, context.Canceled):
		return "canceled"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	}
	var be *run.BudgetError
	if errors.As(err, &be) {
		return "budget:" + be.Resource
	}
	if errors.Is(err, check.ErrCheckpointDrift) {
		return "drift"
	}
	if errors.Is(err, run.ErrRecovered) {
		return "panic"
	}
	var we *check.WorkerError
	if errors.As(err, &we) {
		return "worker"
	}
	return "error"
}

// Outcome is the result of a supervised check.
type Outcome struct {
	// Result is the exhaustive result of the final (or last partial)
	// attempt.
	Result check.Result
	// Mode is ModeExhaustive or ModeDegraded.
	Mode string
	// Fallback is the randomized-search result when Mode is ModeDegraded.
	Fallback check.Result
	// Attempts reports every exhaustive attempt in order.
	Attempts []Attempt
}

// retryable classifies an attempt error: worker deaths and degradable or
// wall budget trips are retried (a resumed attempt restarts the wall
// clock, so wall retries make progress when checkpointing is on);
// cancellation and genuine failures are not.
func retryable(err error, checkpointing bool) bool {
	var we *check.WorkerError
	if errors.As(err, &we) {
		// A worker killed by cancellation is not a chaos casualty.
		return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
	}
	var be *run.BudgetError
	if errors.As(err, &be) {
		if be.Degradable() {
			return true
		}
		return be.Resource == "wall" && checkpointing
	}
	return false
}

// growBudget multiplies every bounded resource by g (unlimited resources
// stay unlimited).
func growBudget(b run.Budget, g float64) run.Budget {
	if b.MaxSteps > 0 {
		b.MaxSteps = int64(float64(b.MaxSteps) * g)
	}
	if b.MaxStates > 0 {
		b.MaxStates = int(float64(b.MaxStates) * g)
	}
	if b.MaxWall > 0 {
		b.MaxWall = time.Duration(float64(b.MaxWall) * g)
	}
	if b.MaxMemEstimate > 0 {
		b.MaxMemEstimate = int64(float64(b.MaxMemEstimate) * g)
	}
	return b
}

// CheckMutex supervises an exhaustive mutual-exclusion check of the
// subject under the given model: it retries failed attempts from the last
// certified checkpoint with exponential backoff, escalating budget then
// worker count, and degrades to a seeded randomized search only after the
// ladder is exhausted — replacing the old restart-from-zero degradation.
//
// The returned error is non-nil only for non-recoverable failures
// (cancellation, machine errors, a failing randomized fallback); budget
// exhaustion that ends in degradation is reported through Outcome.Mode.
func CheckMutex(ctx context.Context, subject *check.Subject, model machine.Model, o Options) (*Outcome, error) {
	o = o.withDefaults()
	if o.CheckpointPath != "" && !o.Resume {
		// This run owns the snapshot path. Whatever predates it — a
		// finished earlier run, a different configuration — must not be
		// resumed implicitly: clear it so every later load sees only
		// snapshots this run wrote. Failing to clear is a hard error;
		// proceeding could silently continue stale state.
		if err := os.Remove(o.CheckpointPath); err != nil && !os.IsNotExist(err) {
			return nil, fmt.Errorf("supervise: clearing pre-existing checkpoint: %w", err)
		}
	}
	out := &Outcome{Mode: ModeExhaustive}
	budget := o.Budget
	// Resolve the pool size up front so the halving rung operates on the
	// actual count (halving a 0-means-NumCPU sentinel would widen it).
	workers := o.Workers
	if workers == 0 {
		workers = runtime.NumCPU()
	}
	if workers < 1 {
		workers = 1
	}
	var backoff time.Duration

	for attempt := 0; attempt < o.MaxAttempts; attempt++ {
		rep := Attempt{Index: attempt, Workers: workers, Budget: budget, Backoff: backoff}
		if backoff > 0 {
			o.Sleep(backoff)
		}

		chk := check.Opts{Budget: budget, Faults: o.Faults, Symmetry: o.Symmetry, Reduction: o.Reduction, Workers: workers}
		if o.CheckpointPath != "" {
			chk.Checkpoint = &check.CheckpointPolicy{
				Path: o.CheckpointPath, EveryStates: o.CheckpointEvery, Meta: o.Meta,
			}
		}
		if o.WorkerFault != nil {
			a := attempt
			chk.WorkerFault = func(level, worker int) error { return o.WorkerFault(a, level, worker) }
		}

		// A panic inside the explorer is recovered here, at the attempt
		// boundary, so the attempt report records it (ErrKind "panic")
		// instead of unwinding past the supervisor and losing the ladder.
		res, err := func() (res check.Result, err error) {
			defer run.Recover("supervised attempt", &err)
			ck := loadCertified(o.CheckpointPath, &rep)
			if ck != nil {
				res, err = subject.ResumeExhaustiveParallel(ctx, model, ck, chk)
				if err != nil && errors.Is(err, check.ErrCheckpointDrift) {
					// The snapshot decoded but does not certify against this
					// subject: fail closed, restart fresh.
					rep.CheckpointRejected = err.Error()
					res, err = subject.ExhaustiveParallel(ctx, model, chk)
				} else {
					rep.ResumedLevel = res.ResumedLevel
					rep.VisitedReused = res.VisitedReused
				}
			} else {
				res, err = subject.ExhaustiveParallel(ctx, model, chk)
			}
			return res, err
		}()
		rep.States = res.States
		if es := res.Engine; es != nil {
			rep.Steals = es.Steals
			rep.Donated = es.Donated
			rep.Parks = es.Parks
			rep.BatchLookups = es.BatchLookups
			rep.Checkpoints = es.Checkpoints
		}
		if err != nil {
			rep.Err = err.Error()
			rep.ErrKind = ClassifyCancel(ctx, err)
		}
		out.Attempts = append(out.Attempts, rep)
		out.Result = res
		if o.OnAttempt != nil {
			o.OnAttempt(rep)
		}

		if err == nil {
			// Terminal verdict: the snapshot on disk (if any) describes a
			// frontier below it. Drop it so a later run at the same path
			// starts fresh instead of resuming superseded state.
			if o.CheckpointPath != "" {
				os.Remove(o.CheckpointPath)
			}
			return out, nil // proof or violation
		}
		if !retryable(err, o.CheckpointPath != "") {
			return out, err
		}

		// Escalation ladder: grow the budget first; once past the
		// midpoint of the ladder, also shrink the worker pool.
		budget = growBudget(budget, o.BudgetGrowth)
		if attempt+1 >= (o.MaxAttempts+1)/2 && workers > 1 {
			workers = workers / 2
			if workers < 1 {
				workers = 1
			}
		}
		backoff = o.BackoffBase << attempt
	}

	// Ladder exhausted: degrade to randomized search (holds no visited
	// set, so it runs in constant memory where the exhaustive attempts
	// tripped).
	out.Mode = ModeDegraded
	rng := rand.New(rand.NewSource(o.Seed))
	fb, err := subject.Random(ctx, model, rng, o.FallbackRuns, o.FallbackMaxSteps, 0.35,
		check.Opts{Faults: o.Faults})
	out.Fallback = fb
	if err != nil && !run.IsLimit(err) {
		return out, fmt.Errorf("supervise: degraded fallback: %w", err)
	}
	return out, nil
}

// loadCertified reads and decodes the checkpoint file, recording (and
// swallowing) rejection of corrupted or unreadable snapshots. A missing
// file is a plain fresh start.
func loadCertified(path string, rep *Attempt) *check.Checkpoint {
	if path == "" {
		return nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			rep.CheckpointRejected = err.Error()
		}
		return nil
	}
	ck, err := check.DecodeCheckpoint(data)
	if err != nil {
		rep.CheckpointRejected = err.Error()
		return nil
	}
	return ck
}

package supervise

// Chaos self-tests: inject worker kills, checkpoint corruption, and
// worker stalls into supervised runs and prove the supervisor either
// recovers to the same certified verdict a clean run produces, or fails
// closed — it never reports a verdict from state it could not certify.
// CI runs these under -race (the soak job greps for "Chaos").

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"tradingfences/internal/check"
	"tradingfences/internal/locks"
	"tradingfences/internal/machine"
	"tradingfences/internal/run"
)

func noSleep(time.Duration) {}

// Killing a worker mid-exploration must cost one attempt, not the
// verdict: the retry resumes from the last checkpoint (reusing the
// visited shards in-process) and reproduces the clean run bit for bit,
// for both a proof and a violation.
func TestChaosWorkerKillResumes(t *testing.T) {
	cases := []struct {
		name string
		ctor locks.Constructor
	}{
		{"bakery", locks.NewBakery},
		{"bakery-tso", locks.NewBakeryTSO},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := mustSubject(t, tc.name, tc.ctor, 2)
			clean, err := s.ExhaustiveParallel(bg(), machine.PSO, check.Opts{Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			out, err := CheckMutex(bg(), s, machine.PSO, Options{
				Workers:        2,
				CheckpointPath: filepath.Join(t.TempDir(), "ck.json"),
				// A one-state cadence forces the first snapshot generation
				// before any violation can be reached, so the gen-keyed
				// kill below fires deterministically even on the
				// violating subject.
				CheckpointEvery: 1,
				BackoffBase:     time.Microsecond,
				Sleep:           noSleep,
				WorkerFault: func(attempt, gen, worker int) error {
					if attempt == 0 && gen >= 1 {
						return errors.New("chaos: worker shot")
					}
					return nil
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if out.Mode != ModeExhaustive {
				t.Fatalf("mode = %q, want exhaustive", out.Mode)
			}
			if len(out.Attempts) != 2 {
				t.Fatalf("attempts = %d, want 2 (kill + resume)", len(out.Attempts))
			}
			if out.Attempts[0].Err == "" {
				t.Fatal("killed attempt reported no error")
			}
			if out.Attempts[1].ResumedLevel == 0 || !out.Attempts[1].VisitedReused {
				t.Fatalf("retry did not resume from checkpoint: %+v", out.Attempts[1])
			}
			requireSameVerdict(t, tc.name, s, machine.PSO, out.Result, clean)
		})
	}
}

// Corrupting the checkpoint file between attempts must not poison the
// retry: the snapshot fails its checksum, the rejection is recorded, and
// the attempt restarts fresh — recovering the correct verdict from zero
// rather than trusting corrupt state.
func TestChaosCorruptedCheckpointFailsClosed(t *testing.T) {
	s := mustSubject(t, "bakery", locks.NewBakery, 2)
	clean, err := s.ExhaustiveParallel(bg(), machine.PSO, check.Opts{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ck.json")
	out, err := CheckMutex(bg(), s, machine.PSO, Options{
		Workers:         2,
		CheckpointPath:  path,
		CheckpointEvery: 1,
		BackoffBase:     time.Microsecond,
		Sleep:           noSleep,
		WorkerFault: func(attempt, gen, worker int) error {
			if attempt == 0 && gen >= 1 {
				// Scribble over the snapshot, then die: the retry finds
				// garbage where its resume point should be.
				if werr := os.WriteFile(path, []byte(`{"version":1,"level":`), 0o644); werr != nil {
					t.Errorf("corrupting checkpoint: %v", werr)
				}
				return errors.New("chaos: worker shot")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Attempts) != 2 {
		t.Fatalf("attempts = %d, want 2", len(out.Attempts))
	}
	if out.Attempts[1].CheckpointRejected == "" {
		t.Fatal("corrupted checkpoint was not rejected")
	}
	if out.Attempts[1].ResumedLevel != 0 || out.Attempts[1].VisitedReused {
		t.Fatalf("retry resumed from corrupt state: %+v", out.Attempts[1])
	}
	requireSameResult(t, "after corruption", out.Result, clean)
}

// Truncating the file to zero bytes (a crash between create and write,
// with a non-atomic writer) is also rejected, not treated as "no
// checkpoint yet" silently succeeding with a wrong resume.
func TestChaosTruncatedCheckpointFailsClosed(t *testing.T) {
	s := mustSubject(t, "bakery-tso", locks.NewBakeryTSO, 2)
	clean, err := s.ExhaustiveParallel(bg(), machine.PSO, check.Opts{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ck.json")
	out, err := CheckMutex(bg(), s, machine.PSO, Options{
		Workers:         2,
		CheckpointPath:  path,
		CheckpointEvery: 1,
		BackoffBase:     time.Microsecond,
		Sleep:           noSleep,
		WorkerFault: func(attempt, gen, worker int) error {
			if attempt == 0 && gen >= 1 {
				if werr := os.Truncate(path, 0); werr != nil {
					t.Errorf("truncating checkpoint: %v", werr)
				}
				return errors.New("chaos: worker shot")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Attempts) != 2 {
		t.Fatalf("attempts = %d, want 2", len(out.Attempts))
	}
	if out.Attempts[1].CheckpointRejected == "" {
		t.Fatal("truncated checkpoint was not rejected")
	}
	requireSameVerdict(t, "after truncation", s, machine.PSO, out.Result, clean)
}

// A stalled worker that drags the attempt past its wall budget is
// retried from the checkpoint with a fresh (and grown) wall clock; the
// healthy retry completes with the clean verdict. The stall fires in
// every worker at the first snapshot generation — the subject is big
// enough that plenty of metered steps (and thus wall checks) remain
// after the stall.
func TestChaosStallRetriesWallTrip(t *testing.T) {
	s := mustSubject(t, "bakery", locks.NewBakery, 2)
	clean, err := s.ExhaustiveParallel(bg(), machine.PSO, check.Opts{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	out, err := CheckMutex(bg(), s, machine.PSO, Options{
		Workers:         2,
		Budget:          run.Budget{MaxWall: 300 * time.Millisecond},
		CheckpointPath:  filepath.Join(t.TempDir(), "ck.json"),
		CheckpointEvery: 1,
		MaxAttempts:     4,
		BackoffBase:     time.Microsecond,
		Sleep:           noSleep,
		WorkerFault: func(attempt, gen, worker int) error {
			if attempt == 0 && gen == 1 {
				time.Sleep(600 * time.Millisecond) // stall past MaxWall
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Mode != ModeExhaustive {
		t.Fatalf("mode = %q, want exhaustive (attempts: %+v)", out.Mode, out.Attempts)
	}
	if len(out.Attempts) < 2 {
		t.Fatalf("stall did not cost an attempt: %+v", out.Attempts)
	}
	if out.Attempts[0].Err == "" {
		t.Fatal("stalled attempt reported no error")
	}
	requireSameResult(t, "after stall", out.Result, clean)
}

// Repeated kills across every attempt exhaust the ladder; the supervisor
// must end degraded rather than loop forever or report an uncertified
// exhaustive verdict.
func TestChaosPersistentKillerDegrades(t *testing.T) {
	s := mustSubject(t, "bakery", locks.NewBakery, 2)
	// Snapshot generations are monotone across resumes, so an absolute
	// threshold would re-fire at the very start of every retry with no
	// progress in between. Key the kill on progress instead: each attempt
	// is allowed two generations past the one it started from, then dies.
	var mu sync.Mutex
	startGen := map[int]int{}
	out, err := CheckMutex(bg(), s, machine.PSO, Options{
		Workers:         2,
		CheckpointPath:  filepath.Join(t.TempDir(), "ck.json"),
		CheckpointEvery: 1,
		MaxAttempts:     3,
		BackoffBase:     time.Microsecond,
		Sleep:           noSleep,
		Seed:            3,
		WorkerFault: func(attempt, gen, worker int) error {
			mu.Lock()
			first, ok := startGen[attempt]
			if !ok {
				startGen[attempt], first = gen, gen
			}
			mu.Unlock()
			if gen >= first+2 {
				return errors.New("chaos: worker shot")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Mode != ModeDegraded {
		t.Fatalf("mode = %q, want degraded", out.Mode)
	}
	if out.Fallback.Violation {
		t.Fatal("degraded fallback refuted a correct lock")
	}
	// Later attempts still made forward progress from checkpoints.
	if out.Attempts[1].ResumedLevel == 0 || out.Attempts[2].ResumedLevel <= out.Attempts[1].ResumedLevel {
		t.Fatalf("attempts did not advance through checkpoints: %+v", out.Attempts)
	}
}

package supervise

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"tradingfences/internal/check"
	"tradingfences/internal/locks"
	"tradingfences/internal/machine"
	"tradingfences/internal/run"
)

// Cancellation arriving mid-attempt (not before it) must surface as a
// single classified attempt — ErrKind "canceled", never retried — and must
// leave the checkpoint directory clean: the latest certified snapshot
// stays on disk for a later resume, and no orphaned temp files survive
// the interrupted atomic writes.
func TestCancelMidAttemptKeepsResumableCheckpoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	s := mustSubject(t, "bakery", locks.NewBakery, 2)

	ctx, cancel := context.WithCancel(bg())
	defer cancel()
	out, err := CheckMutex(ctx, s, machine.PSO, Options{
		Workers:         2,
		CheckpointPath:  path,
		CheckpointEvery: 1,
		MaxAttempts:     5,
		// Cancel from inside the exploration once a few snapshot
		// generations are behind us — a deterministic mid-attempt cut.
		WorkerFault: func(attempt, gen, worker int) error {
			if gen >= 4 {
				cancel()
			}
			return nil
		},
	})
	if err == nil {
		t.Fatal("cancelled run succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(out.Attempts) != 1 {
		t.Fatalf("cancelled run retried: %d attempts", len(out.Attempts))
	}
	a := out.Attempts[0]
	if a.ErrKind != "canceled" {
		t.Fatalf("ErrKind = %q, want canceled (attempt: %+v)", a.ErrKind, a)
	}
	if out.Mode != ModeExhaustive {
		t.Fatalf("cancellation degraded to %q instead of returning", out.Mode)
	}
	// The partial result still reports the effort spent.
	if out.Result.States == 0 {
		t.Fatal("cancelled attempt reported zero states")
	}

	// Directory hygiene: the snapshot survives for resume; nothing else
	// (no .tmp leftovers from interrupted atomic writes) does.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "ck.json" {
			t.Fatalf("orphaned file after cancellation: %q", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Fatal("cancelled run left no checkpoint to resume from")
	}

	// The snapshot certifies and resumes to the exact verdict of an
	// uninterrupted run, and the terminal verdict cleans it up.
	clean, err := s.ExhaustiveParallel(bg(), machine.PSO, check.Opts{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := CheckMutex(bg(), s, machine.PSO, Options{
		Workers:        2,
		CheckpointPath: path,
		Resume:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ra := resumed.Attempts[0]
	if ra.ResumedLevel == 0 || !ra.VisitedReused || ra.CheckpointRejected != "" {
		t.Fatalf("resume after cancellation did not pick up the snapshot: %+v", ra)
	}
	requireSameResult(t, "resume after cancellation", resumed.Result, clean)
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("snapshot survived the terminal verdict: stat err = %v", err)
	}
}

// A deadline expiry behaves like cancellation (single attempt, no retry
// burn) but is classified as its own kind, so decision logs can tell a
// client-imposed timeout from a drain.
func TestDeadlineClassifiedNotRetried(t *testing.T) {
	s := mustSubject(t, "bakery", locks.NewBakery, 2)
	ctx, cancel := context.WithDeadline(bg(), time.Now().Add(-time.Second))
	defer cancel()
	out, err := CheckMutex(ctx, s, machine.PSO, Options{Workers: 2, MaxAttempts: 5})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if len(out.Attempts) != 1 {
		t.Fatalf("deadline-expired run retried: %d attempts", len(out.Attempts))
	}
	if out.Attempts[0].ErrKind != "deadline" {
		t.Fatalf("ErrKind = %q, want deadline", out.Attempts[0].ErrKind)
	}
}

func TestClassifyErr(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want string
	}{
		{"nil", nil, ""},
		{"canceled", context.Canceled, "canceled"},
		{"deadline", context.DeadlineExceeded, "deadline"},
		{"worker wrapping cancel", &check.WorkerError{Err: context.Canceled}, "canceled"},
		{"worker wrapping deadline", &check.WorkerError{Err: context.DeadlineExceeded}, "deadline"},
		{"budget states", &run.BudgetError{Resource: "states", Limit: 1, Used: 2}, "budget:states"},
		{"budget wall", &run.BudgetError{Resource: "wall"}, "budget:wall"},
		{"worker wrapping budget", &check.WorkerError{Err: &run.BudgetError{Resource: "steps"}}, "budget:steps"},
		{"drift", check.ErrCheckpointDrift, "drift"},
		{"panic", run.ErrRecovered, "panic"},
		{"worker chaos", &check.WorkerError{Level: 2, Worker: 1, Err: errors.New("chaos")}, "worker"},
		{"plain", errors.New("machine: stuck"), "error"},
	}
	for _, tc := range cases {
		if got := ClassifyErr(tc.err); got != tc.want {
			t.Errorf("%s: ClassifyErr = %q, want %q", tc.name, got, tc.want)
		}
	}
}

// OnAttempt streams the ladder as it happens: one callback per attempt,
// in order, carrying the same reports that end up in Outcome.Attempts,
// each already classified.
func TestOnAttemptStreamsLadder(t *testing.T) {
	s := mustSubject(t, "bakery", locks.NewBakery, 2)
	var streamed []Attempt
	out, err := CheckMutex(bg(), s, machine.PSO, Options{
		Workers:     4,
		Budget:      run.Budget{MaxStates: 40},
		MaxAttempts: 3,
		BackoffBase: 1,
		Sleep:       func(time.Duration) {},
		Seed:        1,
		OnAttempt:   func(a Attempt) { streamed = append(streamed, a) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(out.Attempts) {
		t.Fatalf("streamed %d attempts, outcome has %d", len(streamed), len(out.Attempts))
	}
	for i, a := range streamed {
		if a.Index != i {
			t.Fatalf("streamed attempt %d has index %d", i, a.Index)
		}
		if a.ErrKind != "budget:states" {
			t.Fatalf("attempt %d ErrKind = %q, want budget:states (err %q)", i, a.ErrKind, a.Err)
		}
		if a.Err != out.Attempts[i].Err || a.States != out.Attempts[i].States {
			t.Fatalf("streamed attempt %d diverges from outcome: %+v vs %+v", i, a, out.Attempts[i])
		}
	}
}

package perm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIdentity(t *testing.T) {
	for _, n := range []int{0, 1, 2, 5, 17} {
		p := Identity(n)
		if len(p) != n {
			t.Fatalf("Identity(%d) has length %d", n, len(p))
		}
		for i, v := range p {
			if v != i {
				t.Errorf("Identity(%d)[%d] = %d", n, i, v)
			}
		}
		if !p.Valid() {
			t.Errorf("Identity(%d) not valid", n)
		}
	}
}

func TestReverse(t *testing.T) {
	p := Reverse(5)
	want := Perm{4, 3, 2, 1, 0}
	if !p.Equal(want) {
		t.Fatalf("Reverse(5) = %v, want %v", p, want)
	}
	if !p.Valid() {
		t.Error("Reverse(5) not valid")
	}
}

func TestRotation(t *testing.T) {
	p := Rotation(5, 2)
	want := Perm{2, 3, 4, 0, 1}
	if !p.Equal(want) {
		t.Fatalf("Rotation(5,2) = %v, want %v", p, want)
	}
	if !Rotation(7, 0).Equal(Identity(7)) {
		t.Error("Rotation(n,0) should be identity")
	}
}

func TestRandomIsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		p := Random(n, rng)
		if !p.Valid() {
			t.Fatalf("Random(%d) produced invalid %v", n, p)
		}
	}
}

func TestValidRejects(t *testing.T) {
	cases := []Perm{
		{0, 0},
		{1, 2},
		{-1, 0},
		{0, 2},
	}
	for _, p := range cases {
		if p.Valid() {
			t.Errorf("Valid(%v) = true, want false", p)
		}
	}
}

func TestInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(30)
		p := Random(n, rng)
		q := p.Inverse()
		for i := range p {
			if q[p[i]] != i {
				t.Fatalf("inverse broken: p=%v q=%v", p, q)
			}
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	p := Identity(4)
	q := p.Clone()
	q[0] = 3
	if p[0] != 0 {
		t.Fatal("Clone aliases original")
	}
}

func TestRankUnrankRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(10)
		p := Random(n, rng)
		r, err := p.Rank()
		if err != nil {
			t.Fatalf("Rank(%v): %v", p, err)
		}
		q, err := Unrank(n, r)
		if err != nil {
			t.Fatalf("Unrank(%d, %d): %v", n, r, err)
		}
		if !p.Equal(q) {
			t.Fatalf("round trip: %v -> %d -> %v", p, r, q)
		}
	}
}

func TestRankBijective(t *testing.T) {
	const n = 5
	seen := make(map[uint64]bool)
	Enumerate(n, func(p Perm) bool {
		r, err := p.Rank()
		if err != nil {
			t.Fatalf("Rank(%v): %v", p, err)
		}
		if seen[r] {
			t.Fatalf("duplicate rank %d for %v", r, p)
		}
		seen[r] = true
		return true
	})
	if len(seen) != 120 {
		t.Fatalf("enumerated %d permutations of [5], want 120", len(seen))
	}
	for r := uint64(0); r < 120; r++ {
		if !seen[r] {
			t.Fatalf("rank %d never produced", r)
		}
	}
}

func TestRankIdentityIsZero(t *testing.T) {
	r, err := Identity(8).Rank()
	if err != nil || r != 0 {
		t.Fatalf("Rank(identity) = %d, %v; want 0, nil", r, err)
	}
	rr, err := Reverse(8).Rank()
	if err != nil {
		t.Fatal(err)
	}
	var fact uint64 = 1
	for k := uint64(2); k <= 8; k++ {
		fact *= k
	}
	if rr != fact-1 {
		t.Fatalf("Rank(reverse) = %d, want %d", rr, fact-1)
	}
}

func TestRankErrors(t *testing.T) {
	bad := Perm{0, 0, 1}
	if _, err := bad.Rank(); err == nil {
		t.Error("Rank of invalid permutation should error")
	}
	if _, err := Identity(21).Rank(); err == nil {
		t.Error("Rank of 21-element permutation should error")
	}
	if _, err := Unrank(21, 0); err == nil {
		t.Error("Unrank for n=21 should error")
	}
	if _, err := Unrank(3, 6); err == nil {
		t.Error("Unrank out-of-range rank should error")
	}
}

func TestEnumerateLexOrder(t *testing.T) {
	var prev uint64
	first := true
	count := 0
	Enumerate(4, func(p Perm) bool {
		r, err := p.Rank()
		if err != nil {
			t.Fatal(err)
		}
		if !first && r != prev+1 {
			t.Fatalf("enumeration out of order: rank %d after %d", r, prev)
		}
		prev, first = r, false
		count++
		return true
	})
	if count != 24 {
		t.Fatalf("enumerated %d, want 24", count)
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	count := 0
	Enumerate(5, func(Perm) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Fatalf("early stop after %d calls, want 7", count)
	}
}

func TestLog2Factorial(t *testing.T) {
	v := Log2Factorial(1)
	if v != 0 {
		t.Errorf("Log2Factorial(1) = %v, want 0", v)
	}
	// log2(5!) = log2(120)
	want := math.Log2(120)
	if got := Log2Factorial(5); math.Abs(got-want) > 1e-9 {
		t.Errorf("Log2Factorial(5) = %v, want %v", got, want)
	}
	// Stirling sanity: log2(n!) ~ n log2 n - n log2 e.
	n := 1000
	approx := float64(n)*math.Log2(float64(n)) - float64(n)*math.Log2(math.E)
	if got := Log2Factorial(n); math.Abs(got-approx) > 10 {
		t.Errorf("Log2Factorial(1000) = %v, Stirling approx %v too far", got, approx)
	}
}

func TestQuickInversionInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64, sz uint8) bool {
		n := int(sz%32) + 1
		r := rand.New(rand.NewSource(seed))
		p := Random(n, r)
		return p.Inverse().Inverse().Equal(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

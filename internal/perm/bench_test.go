package perm

import (
	"math/rand"
	"testing"
)

// BenchmarkRankUnrank measures the Lehmer codec.
func BenchmarkRankUnrank(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := Random(16, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := p.Rank()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Unrank(16, r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnumerate measures full enumeration of S_8 (40320 perms).
func BenchmarkEnumerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		count := 0
		Enumerate(8, func(Perm) bool {
			count++
			return true
		})
		if count != 40320 {
			b.Fatalf("enumerated %d", count)
		}
	}
}

// BenchmarkLog2Factorial measures the entropy helper at experiment sizes.
func BenchmarkLog2Factorial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Log2Factorial(1024)
	}
}

// Package perm provides permutation utilities used by the lower-bound
// encoder and the experiment harness: construction of standard and random
// permutations, Lehmer-code ranking (so that permutations can be compared
// against their information content), and helpers for log2(n!).
package perm

import (
	"fmt"
	"math"
	"math/rand"
)

// Perm is a permutation of [n] = {0, ..., n-1}. Perm[i] is the process that
// occupies position i in the order, matching the paper's notation
// π = (p_0, ..., p_{n-1}).
type Perm []int

// Identity returns the identity permutation of [n].
func Identity(n int) Perm {
	p := make(Perm, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// Reverse returns the reversal permutation (n-1, n-2, ..., 0).
func Reverse(n int) Perm {
	p := make(Perm, n)
	for i := range p {
		p[i] = n - 1 - i
	}
	return p
}

// Random returns a uniformly random permutation of [n] drawn from rng.
func Random(n int, rng *rand.Rand) Perm {
	p := Identity(n)
	rng.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Rotation returns the cyclic rotation (k, k+1, ..., n-1, 0, ..., k-1).
func Rotation(n, k int) Perm {
	p := make(Perm, n)
	for i := range p {
		p[i] = (i + k) % n
	}
	return p
}

// Valid reports whether p is a permutation of [len(p)].
func (p Perm) Valid() bool {
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// Inverse returns the inverse permutation q with q[p[i]] = i.
// It panics if p is not a valid permutation; use Valid first on untrusted
// input.
func (p Perm) Inverse() Perm {
	q := make(Perm, len(p))
	for i, v := range p {
		q[v] = i
	}
	return q
}

// Equal reports whether p and q are the same permutation.
func (p Perm) Equal(q Perm) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of p.
func (p Perm) Clone() Perm {
	q := make(Perm, len(p))
	copy(q, p)
	return q
}

func (p Perm) String() string {
	return fmt.Sprint([]int(p))
}

// Rank returns the Lehmer rank of p in [0, n!). Only defined for n <= 20
// (beyond which n! overflows uint64); it returns an error for larger n.
func (p Perm) Rank() (uint64, error) {
	n := len(p)
	if n > 20 {
		return 0, fmt.Errorf("perm: rank of %d-element permutation overflows uint64", n)
	}
	if !p.Valid() {
		return 0, fmt.Errorf("perm: %v is not a permutation", p)
	}
	var rank uint64
	for i := 0; i < n; i++ {
		smaller := 0
		for j := i + 1; j < n; j++ {
			if p[j] < p[i] {
				smaller++
			}
		}
		rank = rank*uint64(n-i) + uint64(smaller)
	}
	return rank, nil
}

// Unrank returns the permutation of [n] with Lehmer rank r. It is the
// inverse of Rank. Only defined for n <= 20.
func Unrank(n int, r uint64) (Perm, error) {
	if n > 20 {
		return nil, fmt.Errorf("perm: unrank for n=%d overflows uint64", n)
	}
	if n < 0 {
		return nil, fmt.Errorf("perm: negative size %d", n)
	}
	// Decompose r into the factorial number system.
	digits := make([]uint64, n)
	for i := n; i >= 1; i-- {
		digits[i-1] = r % uint64(n-i+1)
		r /= uint64(n - i + 1)
	}
	if r != 0 {
		return nil, fmt.Errorf("perm: rank out of range for n=%d", n)
	}
	avail := Identity(n)
	p := make(Perm, n)
	for i := 0; i < n; i++ {
		d := int(digits[i])
		p[i] = avail[d]
		avail = append(avail[:d], avail[d+1:]...)
	}
	return p, nil
}

// Enumerate calls fn with every permutation of [n] in lexicographic order.
// The slice passed to fn is reused between calls; clone it if it must be
// retained. Enumeration stops early if fn returns false.
func Enumerate(n int, fn func(Perm) bool) {
	p := Identity(n)
	for {
		if !fn(p) {
			return
		}
		// Next lexicographic permutation (classic Narayana algorithm).
		i := n - 2
		for i >= 0 && p[i] >= p[i+1] {
			i--
		}
		if i < 0 {
			return
		}
		j := n - 1
		for p[j] <= p[i] {
			j--
		}
		p[i], p[j] = p[j], p[i]
		for l, r := i+1, n-1; l < r; l, r = l+1, r-1 {
			p[l], p[r] = p[r], p[l]
		}
	}
}

// Log2Factorial returns log2(n!) computed by summing log2(k); this is the
// information content, in bits, of a permutation of [n].
func Log2Factorial(n int) float64 {
	var s float64
	for k := 2; k <= n; k++ {
		s += math.Log2(float64(k))
	}
	return s
}

package tradingfences

import (
	"fmt"
	"math/rand"

	"tradingfences/internal/check"
	"tradingfences/internal/machine"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// MutexVerdict is the outcome of checking one lock under one memory model.
type MutexVerdict struct {
	Lock  LockSpec
	Model MemoryModel
	// Violated is true if a reachable configuration with two processes in
	// the critical section was found.
	Violated bool
	// Proved is true if the state space was explored exhaustively without
	// finding a violation — a proof of mutual exclusion for the bounded
	// workload.
	Proved bool
	// States is the number of distinct states explored.
	States int
	// Witness is a human-readable counterexample trace (empty when no
	// violation was found).
	Witness string
	// WitnessSchedule is the violating schedule in the textual format of
	// ReplaySchedule (empty when no violation was found).
	WitnessSchedule string
}

// ReplaySchedule re-executes a textual witness schedule (as found in
// MutexVerdict.WitnessSchedule) against a fresh instance of the lock's
// instrumented workload and returns the step-by-step trace.
func ReplaySchedule(spec LockSpec, n, passages int, model MemoryModel, schedule string) (string, error) {
	ctor, err := spec.constructor()
	if err != nil {
		return "", err
	}
	subject, err := check.NewMutexSubject(spec.String(), ctor, n, passages)
	if err != nil {
		return "", err
	}
	sched, err := machine.ParseSchedule(schedule)
	if err != nil {
		return "", err
	}
	tr, _, err := subject.Replay(model.internal(), sched)
	if err != nil {
		return "", err
	}
	return tr.Format(subject.Layout), nil
}

// CheckMutex model-checks mutual exclusion of the lock for n processes
// performing `passages` passages each under the given memory model,
// exploring up to maxStates distinct states exhaustively.
func CheckMutex(spec LockSpec, n, passages int, model MemoryModel, maxStates int) (*MutexVerdict, error) {
	ctor, err := spec.constructor()
	if err != nil {
		return nil, err
	}
	subject, err := check.NewMutexSubject(spec.String(), ctor, n, passages)
	if err != nil {
		return nil, err
	}
	res, err := subject.Exhaustive(model.internal(), maxStates)
	if err != nil {
		return nil, err
	}
	v := &MutexVerdict{
		Lock:     spec,
		Model:    model,
		Violated: res.Violation,
		Proved:   res.Complete && !res.Violation,
		States:   res.States,
	}
	if res.Violation {
		// Shrink the witness to a 1-minimal schedule before rendering.
		minimized, err := subject.MinimizeWitness(model.internal(), res.Witness)
		if err != nil {
			return nil, fmt.Errorf("minimize witness: %w", err)
		}
		tr, _, err := subject.Replay(model.internal(), minimized)
		if err != nil {
			return nil, fmt.Errorf("replay witness: %w", err)
		}
		v.Witness = tr.Format(subject.Layout)
		v.WitnessSchedule = minimized.String()
	}
	return v, nil
}

// CheckMutexRandom hunts for mutual-exclusion violations with seeded random
// schedules (runs × maxSteps elements). It can only find violations, never
// prove correctness.
func CheckMutexRandom(spec LockSpec, n, passages int, model MemoryModel, seed int64, runs, maxSteps int) (*MutexVerdict, error) {
	ctor, err := spec.constructor()
	if err != nil {
		return nil, err
	}
	subject, err := check.NewMutexSubject(spec.String(), ctor, n, passages)
	if err != nil {
		return nil, err
	}
	res, err := subject.Random(model.internal(), newRand(seed), runs, maxSteps, 0.35)
	if err != nil {
		return nil, err
	}
	return &MutexVerdict{
		Lock:     spec,
		Model:    model,
		Violated: res.Violation,
		States:   res.States,
	}, nil
}

// LivenessVerdict reports the liveness analysis of a lock: deadlock
// freedom (requirement 2 of the paper's lock definition) and weak
// obstruction-freedom (the paper's Section 2 progress condition, implied
// by deadlock freedom).
type LivenessVerdict struct {
	Lock  LockSpec
	Model MemoryModel
	// States is the number of distinct reachable states explored.
	States int
	// Complete is true if the reachable state space was exhausted;
	// without it the two properties below are only refutable, not
	// provable.
	Complete bool
	// DeadlockFree: from every reachable state some schedule completes
	// all processes.
	DeadlockFree bool
	// WeakObstructionFree: wherever all processes but one are initial or
	// final, the remaining process terminates running alone.
	WeakObstructionFree bool
	// StuckStates counts states from which completion is unreachable.
	StuckStates int
}

// CheckLiveness explores the full state graph of the lock (n processes,
// `passages` passages each) under the given memory model and verifies
// deadlock freedom and weak obstruction-freedom.
func CheckLiveness(spec LockSpec, n, passages int, model MemoryModel, maxStates int) (*LivenessVerdict, error) {
	ctor, err := spec.constructor()
	if err != nil {
		return nil, err
	}
	subject, err := check.NewMutexSubject(spec.String(), ctor, n, passages)
	if err != nil {
		return nil, err
	}
	res, err := subject.CheckProgress(model.internal(), maxStates)
	if err != nil {
		return nil, err
	}
	return &LivenessVerdict{
		Lock:                spec,
		Model:               model,
		States:              res.States,
		Complete:            res.Complete,
		DeadlockFree:        res.DeadlockFree,
		WeakObstructionFree: res.WeakObstructionFree,
		StuckStates:         res.StuckStates,
	}, nil
}

// SeparationRow is one row of the separation matrix: a lock's verdicts
// under SC, TSO and PSO.
type SeparationRow struct {
	Lock     LockSpec
	Fences   int // fences per acquire (static property of the variant)
	Verdicts map[MemoryModel]*MutexVerdict
}

// SeparationMatrix exhaustively checks the witness locks that realize the
// SC ⊋ TSO ⊋ PSO hierarchy (two processes, one passage each):
//
//	peterson-nofence: safe under SC only       (0 fences)
//	peterson-tso:     safe under SC, TSO       (1 fence)
//	peterson:         safe everywhere          (2 fences)
//	bakery-tso:       safe under SC, TSO       (2 acquire fences)
//	bakery:           safe everywhere          (3 acquire fences)
//	bakery-literal:   broken even under SC     (erratum of Algorithm 1's
//	                                            printed line order)
//
// This is the behavioural half of the paper's separation result: the
// number of fences needed grows strictly as write ordering weakens.
func SeparationMatrix(maxStates int) ([]SeparationRow, error) {
	entries := []struct {
		spec   LockSpec
		fences int
	}{
		{LockSpec{Kind: PetersonNoFence}, 0},
		{LockSpec{Kind: PetersonTSO}, 1},
		{LockSpec{Kind: Peterson}, 2},
		{LockSpec{Kind: BakeryTSO}, 2},
		{LockSpec{Kind: Bakery}, 3},
		{LockSpec{Kind: BakeryLiteral}, 3},
	}
	rows := make([]SeparationRow, 0, len(entries))
	for _, e := range entries {
		row := SeparationRow{
			Lock:     e.spec,
			Fences:   e.fences,
			Verdicts: make(map[MemoryModel]*MutexVerdict, 3),
		}
		for _, m := range Models() {
			v, err := CheckMutex(e.spec, 2, 1, m, maxStates)
			if err != nil {
				return nil, fmt.Errorf("separation %v under %v: %w", e.spec, m, err)
			}
			row.Verdicts[m] = v
		}
		rows = append(rows, row)
	}
	return rows, nil
}

package tradingfences

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"tradingfences/internal/check"
	"tradingfences/internal/machine"
	"tradingfences/internal/run"
	"tradingfences/internal/witness"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Verdict modes: how a checking verdict was reached.
const (
	// ModeExhaustive: the verdict comes from exhaustive exploration
	// (complete, or stopped by a non-degradable limit).
	ModeExhaustive = "exhaustive"
	// ModeDegraded: the state/memory budget tripped and a seeded
	// randomized search continued the hunt. The verdict can refute but
	// not prove.
	ModeDegraded = "degraded"
	// ModeRandom: the verdict comes from randomized search only.
	ModeRandom = "random"
)

// Coverage quantifies how much exploration backs a verdict.
type Coverage struct {
	// ExhaustiveStates is the number of distinct states the exhaustive
	// phase interned before finishing or hitting its budget.
	ExhaustiveStates int
	// RandomSteps is the number of schedule steps executed by the
	// randomized phase (degraded or random mode).
	RandomSteps int
	// ReorderBound echoes the reorder bound the exhaustive phase ran
	// under (0 = full buffer semantics, including every SC run — the
	// bound is inert there and reported as such).
	ReorderBound int
	// BoundedComplete is true when the exhaustive phase exhausted the
	// *reorder-bounded* state space without finding a violation: a
	// certificate for executions within the bound, deliberately kept out
	// of Proved because the full semantics admit executions the bounded
	// graph never visits.
	BoundedComplete bool
	// POR is true when the exhaustive phase ran commit-step partial-order
	// reduction; ExhaustiveStates then counts the reduced graph's states.
	// POR preserves verdicts, so it never affects Proved.
	POR bool
}

// MutexVerdict is the outcome of checking one lock under one memory model.
type MutexVerdict struct {
	Lock  LockSpec
	Model MemoryModel
	// Violated is true if a reachable configuration with two processes in
	// the critical section was found.
	Violated bool
	// Proved is true if the state space was explored exhaustively without
	// finding a violation — a proof of mutual exclusion for the bounded
	// workload. Never true in degraded or random mode, and never true
	// under a reorder bound (CheckOptions.ReorderBound): a bounded
	// exploration under-approximates the full semantics, so its clean
	// completion is recorded as Coverage.BoundedComplete instead.
	Proved bool
	// States is the number of distinct states explored.
	States int
	// Mode records how the verdict was reached (see the Mode constants).
	Mode string
	// SymmetryApplied is true when the exhaustive exploration keyed its
	// visited set on symmetry orbits (CheckOptions.Symmetry on a lock
	// with a symmetry declaration); States then counts orbits, not raw
	// states.
	SymmetryApplied bool
	// Coverage quantifies the exploration behind the verdict.
	Coverage Coverage
	// Witness is a human-readable counterexample trace (empty when no
	// violation was found).
	Witness string
	// WitnessSchedule is the violating schedule in the textual format of
	// ReplaySchedule (empty when no violation was found).
	WitnessSchedule string
	// Artifact is the replayable witness artifact for the violation (nil
	// when no violation was found). Serialize with EncodeWitness, replay
	// with ReplayWitness.
	Artifact *Witness
	// Passages reports the per-passage RMR watermarks observed during the
	// exploration, for subjects instrumented with passage probes (the RME
	// workload; nil for plain mutex subjects and for resumed parallel
	// runs). Maxima are certified lower bounds on the worst case: every
	// recorded passage occurred on a real explored execution, but passage
	// counters are excluded from state keys, so revisits along cheaper
	// prefixes are not re-counted.
	Passages *PassageStats
}

// newMutexSubject builds the instrumented workload for a lock spec.
func newMutexSubject(spec LockSpec, n, passages int) (*check.Subject, error) {
	ctor, err := spec.constructor()
	if err != nil {
		return nil, err
	}
	return check.NewMutexSubject(spec.String(), ctor, n, passages)
}

// ReplaySchedule re-executes a textual witness schedule (as found in
// MutexVerdict.WitnessSchedule) against a fresh instance of the lock's
// instrumented workload and returns the step-by-step trace. Crash elements
// ("p0!") replay like any other element; stall windows require the full
// witness artifact (see ReplayWitness).
func ReplaySchedule(spec LockSpec, n, passages int, model MemoryModel, schedule string) (string, error) {
	subject, err := newMutexSubject(spec, n, passages)
	if err != nil {
		return "", err
	}
	sched, err := machine.ParseSchedule(schedule)
	if err != nil {
		return "", err
	}
	tr, _, err := subject.Replay(model.internal(), sched, nil)
	if err != nil {
		return "", err
	}
	return tr.Format(subject.Layout), nil
}

// mutexArtifact assembles the replayable witness artifact for a violating
// schedule: it replays the schedule on a fresh configuration and records
// the initial-configuration and trace fingerprints alongside the schedule,
// fault plan and subject identity. The formatted trace is returned too,
// for human-readable verdicts.
func mutexArtifact(subject *check.Subject, lockName string, n, passages int, model MemoryModel, sched machine.Schedule, faults *FaultPlan) (*Witness, string, error) {
	fresh, err := subject.Build(model.internal())
	if err != nil {
		return nil, "", err
	}
	configFP := fresh.IdentityFingerprint()
	tr, c, err := subject.Replay(model.internal(), sched, faults)
	if err != nil {
		return nil, "", fmt.Errorf("replay witness: %w", err)
	}
	var inCS []int
	for p := 0; p < c.N(); p++ {
		in, err := subject.InCS(c, p)
		if err != nil {
			return nil, "", err
		}
		if in {
			inCS = append(inCS, p)
		}
	}
	w := &Witness{
		Version:  witness.Version,
		Kind:     witness.KindMutex,
		Lock:     lockName,
		N:        n,
		Passages: passages,
		Model:    model.String(),
		Schedule: sched.String(),
		Faults:   faults.Clone(),
		ConfigFP: configFP,
		TraceFP:  tr.Fingerprint(),
		InCS:     inCS,
	}
	if subject.Passages != nil {
		// The replay attaches a fresh passage log, so these watermarks
		// cover exactly this witness execution.
		st := c.PassageStats()
		w.PassageCC, w.PassageDSM = st.MaxCC, st.MaxDSM
	}
	return w, tr.Format(subject.Layout), nil
}

// attachWitness minimizes a violating schedule (best-effort: a limit mid
// ddmin keeps the unminimized witness) and packages it as the verdict's
// replayable artifact and human-readable trace.
func attachWitness(ctx context.Context, subject *check.Subject, lockName string, n, passages int, model MemoryModel, v *MutexVerdict, wsched machine.Schedule, faults *FaultPlan) error {
	if !v.Violated || wsched == nil {
		return nil
	}
	minimized, merr := subject.MinimizeWitness(ctx, model.internal(), wsched, faults)
	if merr != nil {
		if !run.IsLimit(merr) {
			return fmt.Errorf("minimize witness: %w", merr)
		}
		minimized = wsched // keep the unminimized witness when cut short
	}
	w, formatted, aerr := mutexArtifact(subject, lockName, n, passages, model, minimized, faults)
	if aerr != nil {
		return aerr
	}
	v.Witness = formatted
	v.WitnessSchedule = minimized.String()
	v.Artifact = w
	return nil
}

// checkOpts lowers the facade options to the internal checker's, wiring
// the checkpoint policy (and its subject metadata) when a path is set.
func (o CheckOptions) checkOpts(kind, lockName string, n, passages int) check.Opts {
	chk := check.Opts{
		Budget:    o.Budget,
		Faults:    o.Faults,
		Symmetry:  o.Symmetry,
		Workers:   o.Workers,
		Reduction: check.Reduction{ReorderBound: o.ReorderBound, POR: o.POR},
	}
	if o.CheckpointPath != "" {
		if chk.Workers <= 0 {
			// Checkpointing without an explicit worker count pins a single
			// worker: snapshot contents and budget-trip points are then
			// deterministic (0 would resolve to NumCPU inside the engine).
			chk.Workers = 1
		}
		chk.Checkpoint = &check.CheckpointPolicy{
			Path:        o.CheckpointPath,
			EveryStates: o.CheckpointEvery,
			Meta:        check.CheckpointMeta{Kind: kind, Lock: lockName, N: n, Passages: passages},
		}
	}
	return chk
}

// CheckMutexCtx model-checks mutual exclusion of the lock for n processes
// performing `passages` passages each under the given memory model.
//
// The exhaustive search is bounded by opts.Budget and cancelled by ctx.
// When the state or memory budget trips, the checker degrades gracefully:
// a seeded randomized search (opts.Seed, opts.FallbackRuns × FallbackMaxSteps)
// continues the hunt and the verdict reports Mode == ModeDegraded with its
// Coverage — never a silent truncation. Non-degradable limits (steps, wall,
// context) return the partial verdict together with the structured error.
//
// A fault plan with a MaxCrashes budget makes the exhaustive search inject
// up to that many adversarial crash steps; a violation found this way has
// crash elements in its witness schedule and artifact.
//
// On violation the witness schedule is ddmin-minimized and packaged as a
// replayable artifact (MutexVerdict.Artifact).
func CheckMutexCtx(ctx context.Context, spec LockSpec, n, passages int, model MemoryModel, opts CheckOptions) (v *MutexVerdict, err error) {
	defer run.Recover("check mutex", &err)
	subject, err := newMutexSubject(spec, n, passages)
	if err != nil {
		return nil, err
	}
	v, err = checkSubject(ctx, subject, spec.String(), n, passages, model, opts, opts.checkOpts("mutex", spec.String(), n, passages))
	if v != nil {
		v.Lock = spec
	}
	return v, err
}

// checkSubject is the subject-generic core of CheckMutexCtx, shared with
// the recoverable (RME) workload: exhaustive (or parallel) exploration,
// graceful degradation to randomized search on a tripped state budget,
// and witness minimization + artifact packaging on violation. The
// returned verdict's Lock spec is left zero; callers that check a
// LockSpec-named subject fill it in.
func checkSubject(ctx context.Context, subject *check.Subject, lockName string, n, passages int, model MemoryModel, opts CheckOptions, chkOpts check.Opts) (*MutexVerdict, error) {
	var res check.Result
	var xerr error
	if opts.parallel() {
		res, xerr = subject.ExhaustiveParallel(ctx, model.internal(), chkOpts)
	} else {
		res, xerr = subject.Exhaustive(ctx, model.internal(), chkOpts)
	}
	v := &MutexVerdict{
		Model:    model,
		Mode:     ModeExhaustive,
		Violated: res.Violation,
		// A complete clean run under a reorder bound is a bounded
		// certificate, not a proof: the bounded graph under-approximates
		// the full semantics. POR needs no such demotion — it preserves
		// verdicts exactly.
		Proved:          res.Complete && !res.Violation && res.ReorderBound == 0,
		States:          res.States,
		SymmetryApplied: res.SymmetryApplied,
		Coverage: Coverage{
			ExhaustiveStates: res.States,
			ReorderBound:     res.ReorderBound,
			BoundedComplete:  res.ReorderBound > 0 && res.Complete && !res.Violation,
			POR:              res.PORApplied,
		},
		Passages: res.Passages,
	}
	wsched := res.Witness
	if xerr != nil {
		var be *run.BudgetError
		switch {
		case errors.As(xerr, &be) && be.Degradable():
			// Graceful degradation: the visited set outgrew its budget, so
			// continue with randomized search (which holds no visited set).
			runs, maxSteps := opts.fallback()
			rres, rerr := subject.Random(ctx, model.internal(), newRand(opts.Seed), runs, maxSteps, 0.35, chkOpts)
			v.Mode = ModeDegraded
			v.Proved = false
			v.Coverage.RandomSteps = rres.States
			if rres.Passages != nil {
				v.Passages = rres.Passages
			}
			if rres.Violation {
				v.Violated = true
				wsched = rres.Witness
			}
			if rerr != nil && !run.IsLimit(rerr) {
				return v, rerr
			}
		case run.IsLimit(xerr):
			v.Proved = false
			return v, xerr
		default:
			return nil, xerr
		}
	}
	if aerr := attachWitness(ctx, subject, lockName, n, passages, model, v, wsched, opts.Faults); aerr != nil {
		return v, aerr
	}
	return v, nil
}

// CheckMutex model-checks mutual exclusion of the lock for n processes
// performing `passages` passages each under the given memory model,
// exploring up to maxStates distinct states exhaustively. If the state
// budget trips, the check degrades to a seeded randomized search and the
// verdict reports Mode == ModeDegraded (see CheckMutexCtx for full
// control).
func CheckMutex(spec LockSpec, n, passages int, model MemoryModel, maxStates int) (*MutexVerdict, error) {
	return CheckMutexCtx(context.Background(), spec, n, passages, model,
		CheckOptions{Budget: Budget{MaxStates: maxStates}})
}

// CheckMutexRandom hunts for mutual-exclusion violations with seeded random
// schedules (runs × maxSteps elements). It can only find violations, never
// prove correctness.
func CheckMutexRandom(spec LockSpec, n, passages int, model MemoryModel, seed int64, runs, maxSteps int) (*MutexVerdict, error) {
	subject, err := newMutexSubject(spec, n, passages)
	if err != nil {
		return nil, err
	}
	res, err := subject.Random(context.Background(), model.internal(), newRand(seed), runs, maxSteps, 0.35, check.Opts{})
	if err != nil {
		return nil, err
	}
	return &MutexVerdict{
		Lock:     spec,
		Model:    model,
		Violated: res.Violation,
		States:   res.States,
		Mode:     ModeRandom,
		Coverage: Coverage{RandomSteps: res.States},
	}, nil
}

// LivenessVerdict reports the liveness analysis of a lock: deadlock
// freedom (requirement 2 of the paper's lock definition) and weak
// obstruction-freedom (the paper's Section 2 progress condition, implied
// by deadlock freedom).
type LivenessVerdict struct {
	Lock  LockSpec
	Model MemoryModel
	// States is the number of distinct reachable states explored.
	States int
	// Complete is true if the reachable state space was exhausted;
	// without it the two properties below are only refutable, not
	// provable.
	Complete bool
	// DeadlockFree: from every reachable state some schedule completes
	// all processes.
	DeadlockFree bool
	// WeakObstructionFree: wherever all processes but one are initial or
	// final, the remaining process terminates running alone.
	WeakObstructionFree bool
	// StuckStates counts states from which completion is unreachable.
	StuckStates int
}

// CheckLivenessCtx explores the full state graph of the lock (n processes,
// `passages` passages each) under the given memory model and verifies
// deadlock freedom and weak obstruction-freedom, bounded by opts.Budget and
// cancelled by ctx. Budget trips return the partial (inconclusive) verdict
// together with the structured error. Fault plans are rejected: the
// liveness analysis is defined for crash-free executions.
func CheckLivenessCtx(ctx context.Context, spec LockSpec, n, passages int, model MemoryModel, opts CheckOptions) (v *LivenessVerdict, err error) {
	defer run.Recover("check liveness", &err)
	subject, err := newMutexSubject(spec, n, passages)
	if err != nil {
		return nil, err
	}
	res, cerr := subject.CheckProgress(ctx, model.internal(), check.Opts{
		Budget: opts.Budget,
		Faults: opts.Faults,
		// Threaded so the liveness checker rejects reductions loudly: its
		// successor-graph analysis is not covered by the reduction
		// soundness arguments, and silently dropping the flags would let a
		// reduced-looking run masquerade as a full liveness proof.
		Reduction: check.Reduction{ReorderBound: opts.ReorderBound, POR: opts.POR},
	})
	if cerr != nil && (res == nil || !run.IsLimit(cerr)) {
		return nil, cerr
	}
	return &LivenessVerdict{
		Lock:                spec,
		Model:               model,
		States:              res.States,
		Complete:            res.Complete,
		DeadlockFree:        res.DeadlockFree,
		WeakObstructionFree: res.WeakObstructionFree,
		StuckStates:         res.StuckStates,
	}, cerr
}

// CheckLiveness is CheckLivenessCtx with a background context and a plain
// state budget; a tripped budget yields an inconclusive (Complete=false)
// verdict without error.
func CheckLiveness(spec LockSpec, n, passages int, model MemoryModel, maxStates int) (*LivenessVerdict, error) {
	v, err := CheckLivenessCtx(context.Background(), spec, n, passages, model,
		CheckOptions{Budget: Budget{MaxStates: maxStates}})
	if err != nil && v != nil && run.IsLimit(err) {
		return v, nil
	}
	return v, err
}

// SeparationRow is one row of the separation matrix: a lock's verdicts
// under SC, TSO and PSO.
type SeparationRow struct {
	Lock     LockSpec
	Fences   int // fences per acquire (static property of the variant)
	Verdicts map[MemoryModel]*MutexVerdict
}

// SeparationMatrix exhaustively checks the witness locks that realize the
// SC ⊋ TSO ⊋ PSO hierarchy (two processes, one passage each):
//
//	peterson-nofence: safe under SC only       (0 fences)
//	peterson-tso:     safe under SC, TSO       (1 fence)
//	peterson:         safe everywhere          (2 fences)
//	bakery-nofence:   safe under SC only       (0 fences)
//	bakery-tso:       safe under SC, TSO       (2 acquire fences)
//	bakery:           safe everywhere          (3 acquire fences)
//	bakery-literal:   broken even under SC     (erratum of Algorithm 1's
//	                                            printed line order)
//
// This is the behavioural half of the paper's separation result: the
// number of fences needed grows strictly as write ordering weakens.
func SeparationMatrix(maxStates int) ([]SeparationRow, error) {
	return SeparationMatrixCtx(context.Background(), maxStates)
}

// SeparationMatrixCtx is SeparationMatrix bounded by a context.
func SeparationMatrixCtx(ctx context.Context, maxStates int) ([]SeparationRow, error) {
	return SeparationMatrixWithOptions(ctx, CheckOptions{Budget: Budget{MaxStates: maxStates}})
}

// SeparationMatrixWithOptions is SeparationMatrixCtx with full check
// options: in particular opts.Workers routes every cell through the
// parallel explorer (cell verdicts are identical for any worker count).
// Checkpoint options are ignored — a single snapshot file cannot span the
// matrix's 18 independent checks.
func SeparationMatrixWithOptions(ctx context.Context, opts CheckOptions) ([]SeparationRow, error) {
	opts.CheckpointPath = ""
	entries := []struct {
		spec   LockSpec
		fences int
	}{
		{LockSpec{Kind: PetersonNoFence}, 0},
		{LockSpec{Kind: PetersonTSO}, 1},
		{LockSpec{Kind: Peterson}, 2},
		{LockSpec{Kind: BakeryNoFence}, 0},
		{LockSpec{Kind: BakeryTSO}, 2},
		{LockSpec{Kind: Bakery}, 3},
		{LockSpec{Kind: BakeryLiteral}, 3},
	}
	rows := make([]SeparationRow, 0, len(entries))
	for _, e := range entries {
		row := SeparationRow{
			Lock:     e.spec,
			Fences:   e.fences,
			Verdicts: make(map[MemoryModel]*MutexVerdict, 3),
		}
		for _, m := range Models() {
			v, err := CheckMutexCtx(ctx, e.spec, 2, 1, m, opts)
			if err != nil {
				return nil, fmt.Errorf("separation %v under %v: %w", e.spec, m, err)
			}
			row.Verdicts[m] = v
		}
		rows = append(rows, row)
	}
	return rows, nil
}

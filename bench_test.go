package tradingfences

// One benchmark per experiment of DESIGN.md's experiment index. Each
// benchmark reports, via b.ReportMetric, the quantities EXPERIMENTS.md
// records as paper-vs-measured. Run with:
//
//	go test -bench=. -benchmem .

import (
	"fmt"
	"testing"

	"tradingfences/internal/core"
	"tradingfences/internal/machine"
	"tradingfences/internal/perm"
)

// T1 — Table 1: the command census of the encoding. The benchmark encodes
// a fixed random permutation and reports how often each of the five
// commands appears; only those five may appear.
func BenchmarkTable1CommandCensus(b *testing.B) {
	for _, lock := range []LockSpec{{Kind: Bakery}, {Kind: Tournament}} {
		b.Run(lock.String(), func(b *testing.B) {
			const n = 16
			pi := RandomPerm(n, 1)
			var rep *EncodingReport
			var err error
			for i := 0; i < b.N; i++ {
				rep, err = EncodePermutation(lock, Count, pi)
				if err != nil {
					b.Fatal(err)
				}
			}
			c := rep.Census
			b.ReportMetric(float64(c.Proceed), "proceed")
			b.ReportMetric(float64(c.Commit), "commit")
			b.ReportMetric(float64(c.WaitHiddenCommit), "whc")
			b.ReportMetric(float64(c.WaitReadFinish), "wrf")
			b.ReportMetric(float64(c.WaitLocalFinish), "wlf")
		})
	}
}

// F1 — Figure 1: the GT_f schematic. Structural reproduction: height f,
// branching ⌈n^(1/f)⌉, single root.
func BenchmarkFigure1TreeShape(b *testing.B) {
	const n = 256
	for i := 0; i < b.N; i++ {
		for f := 1; f <= 8; f++ {
			sh := ShapeGT(n, f)
			if len(sh.NodesPerLevel) != f || sh.NodesPerLevel[f-1] != 1 {
				b.Fatalf("GT_%d shape wrong: %+v", f, sh)
			}
		}
	}
	sh := ShapeGT(n, 2)
	b.ReportMetric(float64(sh.Branching), "branching(n=256,f=2)")
}

// E1 — Bakery: O(1) fences, Θ(n) RMRs per passage.
func BenchmarkBakeryComplexity(b *testing.B) {
	for _, n := range []int{4, 16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var pt SweepPoint
			var err error
			for i := 0; i < b.N; i++ {
				pt, err = MeasureLock(LockSpec{Kind: Bakery}, n)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(pt.Fences), "fences/passage")
			b.ReportMetric(float64(pt.RMRs), "rmrs/passage")
			b.ReportMetric(float64(pt.RMRs)/float64(n), "rmrs/n")
		})
	}
}

// E2 — tournament tree: Θ(log n) fences and RMRs per passage.
func BenchmarkTournamentComplexity(b *testing.B) {
	for _, n := range []int{4, 16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var pt SweepPoint
			var err error
			for i := 0; i < b.N; i++ {
				pt, err = MeasureLock(LockSpec{Kind: Tournament}, n)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(pt.Fences), "fences/passage")
			b.ReportMetric(float64(pt.RMRs), "rmrs/passage")
		})
	}
}

// E3 — Equation 2 tightness: the GT_f sweep. For each f the measured RMRs
// per passage are reported against the budget f·n^(1/f).
func BenchmarkGTfTradeoffSweep(b *testing.B) {
	const n = 256
	for f := 1; f <= 8; f++ {
		b.Run(fmt.Sprintf("f=%d", f), func(b *testing.B) {
			var pt SweepPoint
			var err error
			for i := 0; i < b.N; i++ {
				pt, err = MeasureLock(LockSpec{Kind: GT, F: f}, n)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(pt.Fences), "fences/passage")
			b.ReportMetric(float64(pt.RMRs), "rmrs/passage")
			b.ReportMetric(float64(pt.RMRs)/pt.RMRBound, "rmrs/budget")
		})
	}
}

// E4 — Theorem 4.2: the lower-bound encoding. Reports the bit-exact code
// length and the theorem's left side, both normalized by n·log2(n).
func BenchmarkLowerBoundEncoding(b *testing.B) {
	for _, cfg := range []struct {
		lock LockSpec
		n    int
	}{
		{LockSpec{Kind: Bakery}, 16},
		{LockSpec{Kind: Bakery}, 32},
		{LockSpec{Kind: Bakery}, 64},
		{LockSpec{Kind: Bakery}, 128},
		{LockSpec{Kind: GT, F: 2}, 32},
		{LockSpec{Kind: GT, F: 2}, 64},
		{LockSpec{Kind: Tournament}, 32},
	} {
		b.Run(fmt.Sprintf("%v/n=%d", cfg.lock, cfg.n), func(b *testing.B) {
			pi := RandomPerm(cfg.n, 7)
			var rep *EncodingReport
			var err error
			for i := 0; i < b.N; i++ {
				rep, err = EncodePermutation(cfg.lock, Count, pi)
				if err != nil {
					b.Fatal(err)
				}
			}
			nlogn := rep.InfoContent
			b.ReportMetric(float64(rep.Fences), "beta")
			b.ReportMetric(float64(rep.RMRs), "rho")
			b.ReportMetric(float64(rep.BitLen)/nlogn, "bits/lg(n!)")
			b.ReportMetric(rep.TheoremLHS/nlogn, "LHS/lg(n!)")
		})
	}
}

// E5 — Equation 1 as a per-passage identity: f·(log2(r/f)+1)/log2(n) stays
// within constant bounds for every lock in the family.
func BenchmarkTradeoffProduct(b *testing.B) {
	const n = 256
	specs := []LockSpec{
		{Kind: Bakery},
		{Kind: GT, F: 2},
		{Kind: GT, F: 4},
		{Kind: Tournament},
		{Kind: Filter}, // suboptimal baseline: product Θ(n), not Θ(log n)
	}
	for _, spec := range specs {
		b.Run(spec.String(), func(b *testing.B) {
			var pt SweepPoint
			var err error
			for i := 0; i < b.N; i++ {
				pt, err = MeasureLock(spec, n)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(pt.Normalized, "LHS/lg(n)")
		})
	}
}

// E6 — the TSO/PSO separation: the full exhaustive matrix.
func BenchmarkSeparation(b *testing.B) {
	var rows []SeparationRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = SeparationMatrix(3_000_000)
		if err != nil {
			b.Fatal(err)
		}
	}
	violations := 0
	proofs := 0
	for _, row := range rows {
		for _, v := range row.Verdicts {
			if v.Violated {
				violations++
			}
			if v.Proved {
				proofs++
			}
		}
	}
	b.ReportMetric(float64(violations), "violations")
	b.ReportMetric(float64(proofs), "proofs")
}

// E7 — the tradeoff extends to the other ordering objects: encoding works
// and the object costs equal the lock's ± O(1).
func BenchmarkOrderingObjects(b *testing.B) {
	const n = 12
	for _, obj := range []ObjectKind{Count, FetchAndIncrement, QueueEnqueue} {
		b.Run(obj.String(), func(b *testing.B) {
			pi := RandomPerm(n, 3)
			var rep *EncodingReport
			var err error
			for i := 0; i < b.N; i++ {
				rep, err = EncodePermutation(LockSpec{Kind: Bakery}, obj, pi)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rep.Fences)/float64(n), "fences/proc")
			b.ReportMetric(float64(rep.RMRs)/float64(n), "rmrs/proc")
		})
	}
}

// E8 — liveness: deadlock freedom and weak obstruction-freedom of the
// correct locks, full state graph.
func BenchmarkLiveness(b *testing.B) {
	for _, spec := range []LockSpec{{Kind: Peterson}, {Kind: Bakery}, {Kind: Tournament}} {
		b.Run(spec.String(), func(b *testing.B) {
			var v *LivenessVerdict
			var err error
			for i := 0; i < b.N; i++ {
				v, err = CheckLiveness(spec, 2, 1, PSO, 3_000_000)
				if err != nil {
					b.Fatal(err)
				}
			}
			if !v.DeadlockFree || !v.WeakObstructionFree || !v.Complete {
				b.Fatalf("liveness failed: %+v", v)
			}
			b.ReportMetric(float64(v.States), "states")
		})
	}
}

// E9 — RMR accounting comparison: the paper's combined model vs the
// classical DSM and CC models on the same passages. Combined is the
// weakest counting (the lower bound transfers).
func BenchmarkAccountingComparison(b *testing.B) {
	const n = 64
	for _, spec := range []LockSpec{{Kind: Bakery}, {Kind: Tournament}} {
		b.Run(spec.String(), func(b *testing.B) {
			var combined, dsm, cc SweepPoint
			var err error
			for i := 0; i < b.N; i++ {
				if combined, err = MeasureLockIn(spec, n, CombinedModel); err != nil {
					b.Fatal(err)
				}
				if dsm, err = MeasureLockIn(spec, n, DSMModel); err != nil {
					b.Fatal(err)
				}
				if cc, err = MeasureLockIn(spec, n, CCModel); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(combined.RMRs), "combined")
			b.ReportMetric(float64(dsm.RMRs), "dsm")
			b.ReportMetric(float64(cc.RMRs), "cc")
		})
	}
}

// E10 — repeated-passage amortization: warm caches make Bakery's scan
// nearly free after the first passage; fences never amortize.
func BenchmarkAmortizedPassages(b *testing.B) {
	const n, passages = 64, 8
	for _, spec := range []LockSpec{{Kind: Bakery}, {Kind: Tournament}} {
		b.Run(spec.String(), func(b *testing.B) {
			var pt AmortizedPoint
			var err error
			for i := 0; i < b.N; i++ {
				pt, err = MeasureLockRepeated(spec, n, passages, CombinedModel)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(pt.FirstRMRs), "first-rmrs")
			b.ReportMetric(pt.AmortizedRMRs, "amortized-rmrs")
			b.ReportMetric(pt.AmortizedFences, "fences/passage")
		})
	}
}

// E11 — contention: per-process worst-case RMRs under a fair round-robin
// schedule vs sequential passages; local-spin structure keeps the
// contended column bounded.
func BenchmarkContention(b *testing.B) {
	const n = 16
	for _, spec := range []LockSpec{{Kind: Bakery}, {Kind: GT, F: 2}, {Kind: Tournament}} {
		b.Run(spec.String(), func(b *testing.B) {
			var pt ContentionPoint
			var err error
			for i := 0; i < b.N; i++ {
				pt, err = MeasureLockContended(spec, n)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(pt.SoloRMRs), "solo-rmrs")
			b.ReportMetric(float64(pt.ContendedRMRs), "contended-rmrs")
		})
	}
}

// E12 — FCFS: Bakery's fence-heavy doorway buys first-come-first-served
// fairness; GT_2 gives it up (an overtake exists). Both verdicts are
// exhaustive over the machine × precedence-monitor product.
func BenchmarkFCFS(b *testing.B) {
	cases := []struct {
		spec LockSpec
		n    int
	}{
		{LockSpec{Kind: Bakery}, 2},
		{LockSpec{Kind: Peterson}, 2},
		{LockSpec{Kind: GT, F: 2}, 3},
	}
	for _, c := range cases {
		b.Run(c.spec.String(), func(b *testing.B) {
			var v *FCFSVerdict
			var err error
			for i := 0; i < b.N; i++ {
				v, err = CheckFCFS(c.spec, c.n, PSO, 8_000_000)
				if err != nil {
					b.Fatal(err)
				}
			}
			viol := 0.0
			if v.Violated {
				viol = 1.0
			}
			b.ReportMetric(viol, "violated")
			b.ReportMetric(float64(v.States), "states")
		})
	}
}

// Ablation — the decoder's solo-termination cache (DESIGN.md §5.1): the
// enabledness rule of D2 needs "does p terminate running alone?" at every
// step; caching the answer between other-process commits is what makes
// decoding affordable.
func BenchmarkAblationSoloCache(b *testing.B) {
	const n = 12
	sys, err := NewSystem(LockSpec{Kind: Bakery}, Count, n)
	if err != nil {
		b.Fatal(err)
	}
	enc := &core.Encoder{Build: func() (*machine.Config, error) { return sys.newConfig(PSO) }}
	res, err := enc.Encode(perm.Identity(n))
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		opts core.DecodeOpts
	}{
		{"cached", core.DecodeOpts{}},
		{"uncached", core.DecodeOpts{DisableSoloCache: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var checks int
			for i := 0; i < b.N; i++ {
				cfg, err := sys.newConfig(PSO)
				if err != nil {
					b.Fatal(err)
				}
				work := make([]*core.Stack, n)
				for j, s := range res.Stacks {
					work[j] = s.Clone()
				}
				dec, err := core.DecodeWith(cfg, work, mode.opts)
				if err != nil {
					b.Fatal(err)
				}
				checks = dec.SoloChecks
			}
			b.ReportMetric(float64(checks), "solo-checks")
		})
	}
}

// Ablation — the encoder's decode checkpoint (DESIGN.md §5.3): appending a
// command to the bottom of p_τ's stack leaves the decode unchanged up to
// the point where that stack emptied, so the encoder snapshots there and
// resumes instead of replaying the prefix.
func BenchmarkAblationDecodeCheckpoint(b *testing.B) {
	const n = 16
	sys, err := NewSystem(LockSpec{Kind: Bakery}, Count, n)
	if err != nil {
		b.Fatal(err)
	}
	pi := perm.Reverse(n)
	for _, mode := range []struct {
		name    string
		disable bool
	}{
		{"checkpointed", false},
		{"full-redecode", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			enc := &core.Encoder{
				Build:             func() (*machine.Config, error) { return sys.newConfig(PSO) },
				DisableCheckpoint: mode.disable,
			}
			for i := 0; i < b.N; i++ {
				if _, err := enc.Encode(pi); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation — encoder cost scaling: with checkpointing, only the suffix
// after p_τ's stack-empty point is re-executed per iteration; this
// benchmark pins the growth curve.
func BenchmarkAblationEncoderScaling(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			pi := IdentityPerm(n)
			var rep *EncodingReport
			var err error
			for i := 0; i < b.N; i++ {
				rep, err = EncodePermutation(LockSpec{Kind: Bakery}, Count, pi)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rep.Iterations), "iterations")
			b.ReportMetric(float64(rep.Steps), "steps")
		})
	}
}

// Throughput — raw machine step rate, the substrate cost everything above
// is built on.
func BenchmarkMachineStepThroughput(b *testing.B) {
	sys, err := NewSystem(LockSpec{Kind: Bakery}, Count, 16)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	steps := 0
	for i := 0; i < b.N; i++ {
		cfg, err := sys.newConfig(PSO)
		if err != nil {
			b.Fatal(err)
		}
		if err := machine.RunRoundRobin(cfg, 2_000_000); err != nil {
			b.Fatal(err)
		}
		steps += int(cfg.Stats().TotalSteps())
	}
	b.ReportMetric(float64(steps)/float64(b.N), "steps/run")
}

package tradingfences

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"tradingfences/internal/check"
	"tradingfences/internal/core"
	"tradingfences/internal/locks"
	"tradingfences/internal/machine"
	"tradingfences/internal/objects"
	"tradingfences/internal/run"
	"tradingfences/internal/supervise"
	"tradingfences/internal/synth"
)

// SynthOracleKind selects the safety oracle of a synthesis run.
type SynthOracleKind int

// Synthesis oracles.
const (
	// OracleSupervised (the default) decides placements with the
	// supervised parallel checker: retry ladder on degradable budget
	// trips, randomized fallback for refutation hunting. Placements whose
	// proof degrades are reported as unknown, never as proved.
	OracleSupervised SynthOracleKind = iota
	// OracleExhaustive decides placements with the sequential exhaustive
	// checker under the per-call budget — deterministic and exact, the
	// right choice at n = 2..3.
	OracleExhaustive
)

// SynthOptions configures SynthesizeFences.
type SynthOptions struct {
	// Passages per process in the checked workload (default 1).
	Passages int
	// Budget bounds each oracle call (zero = unlimited). A tripped
	// degradable budget marks the placement unknown — reported in the
	// partial-frontier verdict, never silently dropped.
	Budget Budget
	// Oracle selects the safety oracle (default OracleSupervised).
	Oracle SynthOracleKind
	// Workers sizes the supervised oracle's worker pool.
	Workers int
	// Seed drives the supervised oracle's randomized fallback.
	Seed int64
	// MaxOracleCalls bounds total oracle invocations (0 = unlimited);
	// hitting the bound leaves the remaining placements unchecked and the
	// frontier explicitly partial.
	MaxOracleCalls int
	// Symmetry enables process-symmetry reduction in the safety oracle
	// (see CheckOptions.Symmetry). Placements inherit the base lock's
	// symmetry declaration — fence insertion is process-uniform — so for
	// symmetric locks every oracle call over the lattice shares the
	// reduction.
	Symmetry bool
	// POR enables commit-step partial-order reduction in the safety
	// oracle (see CheckOptions.POR). Verdict-preserving, so oracle proofs
	// stay full proofs — placements admitted to the frontier under POR
	// are exactly those admitted without it, found with fewer states.
	POR bool
	// ReorderBound > 0 runs the safety oracle under reorder-bounded
	// buffer semantics (see CheckOptions.ReorderBound). The bounded graph
	// under-approximates the full semantics, so the oracle becomes
	// refute-only: every violation it finds is genuine (witnesses replay
	// under full semantics), but a violation-free completion is reported
	// undecided, never as a safe placement — with a bound set, expect a
	// partial frontier unless every surviving placement is refuted.
	ReorderBound int
	// WitnessDir, when set, receives one replayable witness artifact per
	// oracle-refuted placement (synth-<lock>-<sites>_<model>.witness.json).
	WitnessDir string
}

// SynthSite is one candidate fence site of the searched lock.
type SynthSite struct {
	ID   int    `json:"id"`
	Frag string `json:"frag"`
	Desc string `json:"desc"`
}

// SynthPoint is one minimal safe placement with its measured per-passage
// tradeoff coordinates (PSO, combined accounting, like MeasureLock).
type SynthPoint struct {
	// Sites are the fenced site IDs.
	Sites []int `json:"sites"`
	// Lock is the placement's full lock name ("synth:peterson:0-1"),
	// usable in witness artifacts and CLI flags.
	Lock string `json:"lock"`
	// Fences and RMRs are the worst per-process per-passage counts.
	Fences int64 `json:"fences"`
	RMRs   int64 `json:"rmrs"`
	// LHS is f·(log2(r/f)+1) with f clamped to >= 1, comparable to
	// SweepPoint.LHS; Normalized is LHS / log2(n).
	LHS        float64 `json:"lhs"`
	Normalized float64 `json:"normalized"`
	// States is the oracle's state count for the safety proof.
	States int `json:"states"`
	// Certain is true when minimality is certified: every strict subset
	// was explicitly refuted and the proof did not come from a degraded
	// oracle pass.
	Certain bool `json:"certain"`
}

// SynthRefutation is one placement proven unsafe, with its replayable
// witness.
type SynthRefutation struct {
	Sites []int  `json:"sites"`
	Lock  string `json:"lock"`
	// Pruned is true when the placement was refuted by a transferred
	// witness (no oracle call); Source then names the oracle-refuted
	// placement the witness came from, and ByMonotone marks the classic
	// subset-of-a-refuted-placement case.
	Pruned     bool  `json:"pruned"`
	Source     []int `json:"source,omitempty"`
	ByMonotone bool  `json:"by_monotone,omitempty"`
	// WitnessSchedule is the violating schedule in ReplaySchedule's
	// textual format; Artifact is the certified replayable artifact.
	WitnessSchedule string   `json:"witness_schedule"`
	Artifact        *Witness `json:"-"`
}

// SynthResult is the outcome of a fence-placement synthesis run.
type SynthResult struct {
	Lock     LockSpec
	N        int
	Passages int
	Model    MemoryModel
	// Sites are the candidate fence sites of the (stripped) lock.
	Sites []SynthSite
	// Candidates is the placement-lattice size, 2^len(Sites).
	Candidates int
	// Minimal are all minimal safe placements found, measured; Frontier
	// is its Pareto-optimal subset in (fences, RMRs).
	Minimal  []SynthPoint
	Frontier []SynthPoint
	// Refuted lists every placement proven unsafe (oracle refutations
	// first, then pruned ones), each with a replayable witness.
	Refuted []SynthRefutation
	// Dominated counts safe-but-non-minimal placements skipped; Unknown
	// counts placements the per-call budget left undecided; Unchecked
	// counts placements never reached (global bound or cancellation).
	Dominated int
	Unknown   int
	Unchecked int
	// OracleCalls and OracleStates total the oracle effort.
	OracleCalls  int
	OracleStates int
	// Complete is true when every placement was classified; Verdict
	// states it in words, e.g. "frontier complete (1 minimal placement)"
	// or "frontier partial: 3 placements unchecked".
	Complete bool
	Verdict  string
}

// SynthLockName is the lock name of one placement over a base lock spec,
// as recorded in witness artifacts: "synth:<base>:<sites>" with sites
// dash-joined ("synth:peterson:0-1") or "none".
func SynthLockName(spec LockSpec, sites []int) (string, error) {
	p, err := synth.FromSites(sites)
	if err != nil {
		return "", err
	}
	return synth.PlacementName("synth:"+spec.String(), p), nil
}

// oracleFor lowers the facade oracle selection to the engine's.
func (o SynthOptions) oracleFor() synth.Oracle {
	red := check.Reduction{ReorderBound: o.ReorderBound, POR: o.POR}
	if o.Oracle == OracleExhaustive {
		return synth.ExhaustiveOracle(check.Opts{Budget: o.Budget, Symmetry: o.Symmetry, Reduction: red})
	}
	runs, maxSteps := CheckOptions{}.fallback()
	return synth.SupervisedOracle(supervise.Options{
		Workers:          o.Workers,
		Budget:           o.Budget,
		Symmetry:         o.Symmetry,
		Reduction:        red,
		Seed:             o.Seed,
		FallbackRuns:     runs,
		FallbackMaxSteps: maxSteps,
	})
}

// SynthesizeFences strips the lock's fences and searches its placement
// lattice for every minimal safe fence placement under the given memory
// model, then measures each one (PSO, combined RMR accounting, like
// MeasureLock) and reports the (fences, RMRs) Pareto frontier.
//
// Refuted placements — by the oracle or by counterexample transfer —
// each carry a replayable witness artifact. Budget and call-bound trips
// surface as an explicitly partial frontier in Verdict ("frontier
// partial: k placements unchecked"), never as silent truncation; a
// cancelled context returns the partial result with the context error.
func SynthesizeFences(ctx context.Context, spec LockSpec, n int, model MemoryModel, opts SynthOptions) (res *SynthResult, err error) {
	defer run.Recover("synthesize fences", &err)
	ctor, err := spec.constructor()
	if err != nil {
		return nil, err
	}
	if err := ensureDir(opts.WitnessDir); err != nil {
		return nil, err
	}
	base := "synth:" + spec.String()
	eng, serr := synth.Synthesize(ctx, base, ctor, n, model.internal(), synth.Options{
		Passages:       opts.Passages,
		Oracle:         opts.oracleFor(),
		MaxOracleCalls: opts.MaxOracleCalls,
	})
	if eng == nil {
		return nil, serr
	}
	res = &SynthResult{
		Lock:         spec,
		N:            eng.N,
		Passages:     eng.Passages,
		Model:        model,
		Candidates:   eng.Candidates,
		Dominated:    eng.Dominated,
		Unknown:      len(eng.Unknown),
		Unchecked:    eng.Unchecked,
		OracleCalls:  eng.OracleCalls,
		OracleStates: eng.OracleStates,
		Complete:     eng.Complete,
	}
	for _, s := range eng.Sites {
		res.Sites = append(res.Sites, SynthSite{ID: s.ID, Frag: s.Frag, Desc: s.Desc})
	}
	for _, m := range eng.Minimal {
		pt, merr := measurePlacement(spec, ctor, n, m.Placement)
		if merr != nil {
			return res, merr
		}
		pt.States = m.States
		pt.Certain = m.Certain
		res.Minimal = append(res.Minimal, pt)
	}
	res.Frontier = paretoFrontier(res.Minimal)
	if aerr := attachSynthRefutations(spec, ctor, eng, res, opts); aerr != nil {
		return res, aerr
	}
	res.Verdict = synthVerdict(res)
	if serr != nil {
		return res, serr
	}
	return res, nil
}

// measurePlacement measures one placement's uncontended passage via the
// Count object under PSO with combined accounting, mirroring MeasureLock
// (including the wrapper-fence subtraction and the f >= 1 clamp in the
// LHS).
func measurePlacement(spec LockSpec, ctor locks.Constructor, n int, p synth.Placement) (SynthPoint, error) {
	lay := machine.NewLayout()
	lk, err := synth.Constructor(ctor, p)(lay, "lk", n)
	if err != nil {
		return SynthPoint{}, err
	}
	obj, err := objects.NewCount(lay, "obj", lk)
	if err != nil {
		return SynthPoint{}, err
	}
	c, err := machine.NewConfig(machine.PSO, lay, obj.Programs())
	if err != nil {
		return SynthPoint{}, err
	}
	c.SetAccounting(machine.Combined)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if err := machine.RunSequential(c, order, machine.DefaultSoloLimit(n)); err != nil {
		return SynthPoint{}, fmt.Errorf("measure placement %s: %w", p, err)
	}
	st := c.Stats()
	const wrapperFences = 2 // the Count wrapper's CS fence and pre-return fence
	fences := st.MaxFences() - wrapperFences
	if fences < 0 {
		fences = 0
	}
	f := fences
	if f < 1 {
		f = 1
	}
	pt := SynthPoint{
		Sites:  p.Sites(),
		Lock:   synth.PlacementName("synth:"+spec.String(), p),
		Fences: fences,
		RMRs:   st.MaxRMRs(),
		LHS:    core.TradeoffLHS(float64(f), float64(st.MaxRMRs())),
	}
	if pt.Sites == nil {
		pt.Sites = []int{}
	}
	if n > 1 {
		pt.Normalized = pt.LHS / math.Log2(float64(n))
	}
	return pt, nil
}

// paretoFrontier filters points to the Pareto-optimal set in (fences,
// RMRs): a point survives unless another point is no worse on both axes
// and strictly better on one. Ties keep the first point in (fences, RMRs,
// lock-name) order.
func paretoFrontier(pts []SynthPoint) []SynthPoint {
	if len(pts) == 0 {
		return nil
	}
	sorted := append([]SynthPoint(nil), pts...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Fences != sorted[j].Fences {
			return sorted[i].Fences < sorted[j].Fences
		}
		if sorted[i].RMRs != sorted[j].RMRs {
			return sorted[i].RMRs < sorted[j].RMRs
		}
		return sorted[i].Lock < sorted[j].Lock
	})
	var front []SynthPoint
	bestRMRs := int64(math.MaxInt64)
	for _, pt := range sorted {
		if pt.RMRs < bestRMRs {
			front = append(front, pt)
			bestRMRs = pt.RMRs
		}
	}
	return front
}

// attachSynthRefutations packages every refuted placement's witness as a
// certified replayable artifact, and (for oracle refutations, when
// opts.WitnessDir is set) writes the artifacts to disk.
func attachSynthRefutations(spec LockSpec, ctor locks.Constructor, eng *synth.Result, res *SynthResult, opts SynthOptions) error {
	buildOne := func(p synth.Placement, sched machine.Schedule) (SynthRefutation, error) {
		name := synth.PlacementName("synth:"+spec.String(), p)
		subject, err := check.NewMutexSubject(name, synth.Constructor(ctor, p), res.N, res.Passages)
		if err != nil {
			return SynthRefutation{}, err
		}
		w, _, err := mutexArtifact(subject, name, res.N, res.Passages, res.Model, sched, nil)
		if err != nil {
			return SynthRefutation{}, fmt.Errorf("refutation artifact for %s: %w", p, err)
		}
		sites := p.Sites()
		if sites == nil {
			sites = []int{}
		}
		return SynthRefutation{
			Sites:           sites,
			Lock:            name,
			WitnessSchedule: sched.String(),
			Artifact:        w,
		}, nil
	}
	for _, ref := range eng.Refuted {
		r, err := buildOne(ref.Placement, ref.Witness)
		if err != nil {
			return err
		}
		if opts.WitnessDir != "" {
			file := strings.ReplaceAll(r.Lock, ":", "-") + "_" + strings.ToLower(res.Model.String()) + ".witness.json"
			if err := WriteWitnessFile(filepath.Join(opts.WitnessDir, file), r.Artifact); err != nil {
				return err
			}
		}
		res.Refuted = append(res.Refuted, r)
	}
	for _, pr := range eng.Pruned {
		r, err := buildOne(pr.Placement, pr.Witness)
		if err != nil {
			return err
		}
		r.Pruned = true
		r.Source = pr.Source.Sites()
		if r.Source == nil {
			r.Source = []int{}
		}
		r.ByMonotone = pr.ByMonotone
		res.Refuted = append(res.Refuted, r)
	}
	return nil
}

// synthVerdict states the run's completeness in words.
func synthVerdict(res *SynthResult) string {
	if res.Complete {
		plural := "s"
		if len(res.Minimal) == 1 {
			plural = ""
		}
		return fmt.Sprintf("frontier complete (%d minimal placement%s)", len(res.Minimal), plural)
	}
	var parts []string
	if res.Unchecked > 0 {
		parts = append(parts, fmt.Sprintf("%d placements unchecked", res.Unchecked))
	}
	if res.Unknown > 0 {
		parts = append(parts, fmt.Sprintf("%d placements undecided within budget", res.Unknown))
	}
	if len(parts) == 0 {
		parts = append(parts, "incomplete")
	}
	return "frontier partial: " + strings.Join(parts, ", ")
}

// ensureDir makes opts.WitnessDir usable before a synthesis run writes to
// it.
func ensureDir(dir string) error {
	if dir == "" {
		return nil
	}
	return os.MkdirAll(dir, 0o755)
}

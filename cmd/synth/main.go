// Command synth runs the fence-placement synthesizer: it strips a lock's
// fences, searches the placement lattice for all minimal safe placements
// under a memory model, and prints the resulting fences↔RMRs Pareto
// frontier with the refuted placements and their witnesses.
//
// Usage:
//
//	synth -lock peterson -n 2 -model pso
//	synth -lock bakery -n 2 -model pso -json
//	synth -lock peterson -n 2 -model pso -witness-dir out/ -assert-minimal 0,1
//
// Budget trips degrade to an explicit partial-frontier verdict; the exit
// status is nonzero only for hard errors (or a failed -assert-minimal).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"tradingfences"
)

func main() {
	lock := flag.String("lock", "peterson", "base lock to synthesize placements for (bakery, peterson, gtF, ...)")
	n := flag.Int("n", 2, "process count")
	model := flag.String("model", "pso", "memory model: sc, tso, pso")
	passages := flag.Int("passages", 1, "lock passages per process in the checked workload")
	states := flag.Int("states", 0, "per-oracle-call state budget (0 = unlimited)")
	memMB := flag.Int("mem-mb", 0, "per-oracle-call visited-set memory budget in MiB (0 = unlimited)")
	timeout := flag.Duration("timeout", 0, "wall-clock bound for the whole synthesis (0 = none)")
	oracle := flag.String("oracle", "exhaustive", "safety oracle: exhaustive or supervised")
	workers := flag.Int("workers", 0, "worker pool for the supervised oracle")
	maxOracle := flag.Int("max-oracle", 0, "cap on oracle calls (0 = unlimited); exceeding it leaves the frontier explicitly partial")
	seed := flag.Int64("seed", 1, "seed for the supervised oracle's randomized fallback")
	symmetry := flag.Bool("symmetry", false, "enable process-symmetry reduction in the safety oracle (no-op for locks without a symmetry declaration)")
	por := flag.Bool("por", false, "enable commit-step partial-order reduction in the safety oracle (verdict-preserving: the frontier is unchanged, found with fewer states)")
	reorderBound := flag.Int("reorder-bound", 0, "reorder-bounded oracle semantics (0 = full): refutations stay genuine but violation-free completions become undecided, so expect a partial frontier")
	witnessDir := flag.String("witness-dir", "", "directory for refutation witness artifacts (created if missing)")
	jsonOut := flag.Bool("json", false, "emit the full result as JSON")
	assertMinimal := flag.String("assert-minimal", "", "comma-separated site list (or 'none') that must appear among the minimal placements; exit 1 otherwise")
	benchOut := flag.String("bench-out", "", "write a one-entry benchmark record (wall time, oracle calls/states) to this file")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile (pprof) to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (pprof) to this file on exit")
	flag.Parse()

	// The CPU profile is stopped and closed explicitly (not deferred):
	// the error path exits with os.Exit, which would skip defers and
	// truncate the profile.
	var cpuf *os.File
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "synth:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "synth:", err)
			os.Exit(1)
		}
		cpuf = f
	}
	err := run(*lock, *n, *model, *passages, *states, *memMB, *timeout, *oracle,
		*workers, *maxOracle, *seed, *symmetry, *por, *reorderBound, *witnessDir, *jsonOut, *assertMinimal, *benchOut)
	if cpuf != nil {
		pprof.StopCPUProfile()
		cpuf.Close()
	}
	if *memprofile != "" {
		writeHeapProfile(*memprofile)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "synth:", err)
		os.Exit(1)
	}
}

// writeHeapProfile snapshots the heap to path after a GC, so the profile
// reflects retained memory rather than garbage awaiting collection.
func writeHeapProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "synth:", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "synth:", err)
	}
}

func run(lock string, n int, model string, passages, states, memMB int, timeout time.Duration,
	oracle string, workers, maxOracle int, seed int64, symmetry, por bool, reorderBound int,
	witnessDir string, jsonOut bool, assertMinimal, benchOut string) error {
	spec, err := tradingfences.ParseLockSpec(lock)
	if err != nil {
		return err
	}
	mm, err := tradingfences.ParseMemoryModel(model)
	if err != nil {
		return err
	}
	opts := tradingfences.SynthOptions{
		Passages:       passages,
		Budget:         tradingfences.Budget{MaxStates: states, MaxMemEstimate: int64(memMB) << 20},
		Workers:        workers,
		Seed:           seed,
		MaxOracleCalls: maxOracle,
		Symmetry:       symmetry,
		POR:            por,
		ReorderBound:   reorderBound,
		WitnessDir:     witnessDir,
	}
	switch oracle {
	case "exhaustive":
		opts.Oracle = tradingfences.OracleExhaustive
	case "supervised":
		opts.Oracle = tradingfences.OracleSupervised
	default:
		return fmt.Errorf("unknown oracle %q (want exhaustive or supervised)", oracle)
	}
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	start := time.Now()
	res, serr := tradingfences.SynthesizeFences(ctx, spec, n, mm, opts)
	wall := time.Since(start)
	if res == nil {
		return serr
	}
	if serr != nil {
		// A cancelled/limited run still carries an explicit partial
		// verdict — report it, then the error.
		fmt.Fprintf(os.Stderr, "synth: %s\n", res.Verdict)
	}

	if jsonOut {
		if err := printJSON(res, wall); err != nil {
			return err
		}
	} else {
		printText(res, wall)
	}
	if benchOut != "" {
		if err := writeBench(benchOut, res, wall); err != nil {
			return err
		}
	}
	if serr != nil {
		return serr
	}
	if assertMinimal != "" {
		if err := assertFound(res, assertMinimal); err != nil {
			return err
		}
	}
	return nil
}

func parseSiteList(s string) ([]int, error) {
	if s == "none" || s == "" {
		return []int{}, nil
	}
	var sites []int
	for _, part := range strings.Split(s, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad site %q in %q", part, s)
		}
		sites = append(sites, id)
	}
	sort.Ints(sites)
	return sites, nil
}

func sameSites(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func assertFound(res *tradingfences.SynthResult, want string) error {
	sites, err := parseSiteList(want)
	if err != nil {
		return err
	}
	for _, m := range res.Minimal {
		if sameSites(m.Sites, sites) {
			return nil
		}
	}
	return fmt.Errorf("assert-minimal: placement {%s} not among the %d minimal placements", want, len(res.Minimal))
}

func printText(res *tradingfences.SynthResult, wall time.Duration) {
	fmt.Printf("synthesis: %s, n=%d, %s, %d passage(s)\n", res.Lock, res.N, res.Model, res.Passages)
	fmt.Printf("candidate sites (%d):\n", len(res.Sites))
	for _, s := range res.Sites {
		fmt.Printf("  %2d  %-8s %s\n", s.ID, s.Frag, s.Desc)
	}
	fmt.Printf("lattice: %d placements | oracle: %d calls, %d states | pruned: %d | dominated: %d\n",
		res.Candidates, res.OracleCalls, res.OracleStates, prunedCount(res), res.Dominated)
	fmt.Printf("verdict: %s (%.0f ms)\n", res.Verdict, float64(wall.Microseconds())/1000)
	if len(res.Minimal) > 0 {
		fmt.Println("minimal safe placements:")
		for _, m := range res.Minimal {
			mark := " "
			if onFrontier(res, m) {
				mark = "*"
			}
			cert := ""
			if !m.Certain {
				cert = "  (uncertified)"
			}
			fmt.Printf("  %s %-24s fences=%d rmrs=%d lhs=%.2f%s\n", mark, m.Lock, m.Fences, m.RMRs, m.LHS, cert)
		}
		fmt.Println("(* = on the fences/RMRs Pareto frontier)")
	}
	if len(res.Refuted) > 0 {
		fmt.Printf("refuted placements (%d):\n", len(res.Refuted))
		for _, r := range res.Refuted {
			how := "oracle"
			if r.Pruned {
				how = fmt.Sprintf("witness from %v", r.Source)
				if r.ByMonotone {
					how += ", monotone"
				}
			}
			fmt.Printf("  %-24s %s\n", r.Lock, how)
		}
	}
}

func prunedCount(res *tradingfences.SynthResult) int {
	k := 0
	for _, r := range res.Refuted {
		if r.Pruned {
			k++
		}
	}
	return k
}

func onFrontier(res *tradingfences.SynthResult, m tradingfences.SynthPoint) bool {
	for _, f := range res.Frontier {
		if f.Lock == m.Lock {
			return true
		}
	}
	return false
}

// jsonResult flattens the result for machine consumption, embedding the
// wall time so one -json run is a complete record.
type jsonResult struct {
	Lock         string                          `json:"lock"`
	N            int                             `json:"n"`
	Passages     int                             `json:"passages"`
	Model        string                          `json:"model"`
	Sites        []tradingfences.SynthSite       `json:"sites"`
	Candidates   int                             `json:"candidates"`
	OracleCalls  int                             `json:"oracle_calls"`
	OracleStates int                             `json:"oracle_states"`
	Dominated    int                             `json:"dominated"`
	Unknown      int                             `json:"unknown"`
	Unchecked    int                             `json:"unchecked"`
	Complete     bool                            `json:"complete"`
	Verdict      string                          `json:"verdict"`
	WallMS       float64                         `json:"wall_ms"`
	Minimal      []tradingfences.SynthPoint      `json:"minimal"`
	Frontier     []tradingfences.SynthPoint      `json:"frontier"`
	Refuted      []tradingfences.SynthRefutation `json:"refuted"`
}

func printJSON(res *tradingfences.SynthResult, wall time.Duration) error {
	out := jsonResult{
		Lock:         res.Lock.String(),
		N:            res.N,
		Passages:     res.Passages,
		Model:        res.Model.String(),
		Sites:        res.Sites,
		Candidates:   res.Candidates,
		OracleCalls:  res.OracleCalls,
		OracleStates: res.OracleStates,
		Dominated:    res.Dominated,
		Unknown:      res.Unknown,
		Unchecked:    res.Unchecked,
		Complete:     res.Complete,
		Verdict:      res.Verdict,
		WallMS:       float64(wall.Microseconds()) / 1000,
		Minimal:      res.Minimal,
		Frontier:     res.Frontier,
		Refuted:      res.Refuted,
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func writeBench(path string, res *tradingfences.SynthResult, wall time.Duration) error {
	rec := map[string]any{
		"lock":          res.Lock.String(),
		"n":             res.N,
		"model":         res.Model.String(),
		"wall_ms":       float64(wall.Microseconds()) / 1000,
		"oracle_calls":  res.OracleCalls,
		"oracle_states": res.OracleStates,
		"candidates":    res.Candidates,
		"complete":      res.Complete,
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Command encode runs the paper's Section 5 lower-bound construction: for
// one or more permutations π it builds the execution E_π of an ordering
// object over a lock, encodes it as command stacks (Table 1), and reports
// the fence count β, the RMR count ρ, the command census, the bit-exact
// code length, and the information-theoretic floor log2(n!). It then
// decodes the bit string back and verifies the permutation is recovered.
//
// Usage:
//
//	encode [-n 16] [-lock bakery|tournament|gt2|gt3|...] [-perms 5] [-seed 1] [-pi "2,0,1"]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"tradingfences"
)

func main() {
	n := flag.Int("n", 16, "number of processes")
	lock := flag.String("lock", "bakery", "lock: bakery, tournament, peterson, or gtF (e.g. gt2)")
	perms := flag.Int("perms", 3, "number of random permutations to encode")
	seed := flag.Int64("seed", 1, "random seed for permutations")
	piFlag := flag.String("pi", "", "explicit permutation, comma-separated (overrides -perms)")
	traceRows := flag.Int("trace", 0, "print a per-process timeline of a contended run (first N steps)")
	flag.Parse()

	if *traceRows > 0 {
		spec, err := parseLock(*lock)
		if err != nil {
			fmt.Fprintln(os.Stderr, "encode:", err)
			os.Exit(1)
		}
		out, err := tradingfences.TraceTimeline(spec, *n, tradingfences.PSO, *traceRows)
		if err != nil {
			fmt.Fprintln(os.Stderr, "encode:", err)
			os.Exit(1)
		}
		fmt.Print(out)
		return
	}

	if err := run(*n, *lock, *perms, *seed, *piFlag); err != nil {
		fmt.Fprintln(os.Stderr, "encode:", err)
		os.Exit(1)
	}
}

func parseLock(s string) (tradingfences.LockSpec, error) {
	switch s {
	case "bakery":
		return tradingfences.LockSpec{Kind: tradingfences.Bakery}, nil
	case "tournament":
		return tradingfences.LockSpec{Kind: tradingfences.Tournament}, nil
	case "peterson":
		return tradingfences.LockSpec{Kind: tradingfences.Peterson}, nil
	default:
		if f, ok := strings.CutPrefix(s, "gt"); ok {
			h, err := strconv.Atoi(f)
			if err != nil || h < 1 {
				return tradingfences.LockSpec{}, fmt.Errorf("bad GT height in %q", s)
			}
			return tradingfences.LockSpec{Kind: tradingfences.GT, F: h}, nil
		}
		return tradingfences.LockSpec{}, fmt.Errorf("unknown lock %q", s)
	}
}

func run(n int, lock string, perms int, seed int64, piFlag string) error {
	spec, err := parseLock(lock)
	if err != nil {
		return err
	}

	var pis [][]int
	switch {
	case piFlag != "":
		parts := strings.Split(piFlag, ",")
		pi := make([]int, len(parts))
		for i, p := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return fmt.Errorf("bad permutation element %q", p)
			}
			pi[i] = v
		}
		n = len(pi)
		pis = [][]int{pi}
	default:
		pis = append(pis, tradingfences.IdentityPerm(n), tradingfences.ReversePerm(n))
		for i := 0; i < perms; i++ {
			pis = append(pis, tradingfences.RandomPerm(n, seed+int64(i)))
		}
	}

	fmt.Printf("Lower-bound construction: Count over %v, n = %d, PSO machine\n", spec, n)
	fmt.Printf("log2(n!) = %.1f bits (entropy floor for distinguishing executions)\n\n", tradingfences.Log2Factorial(n))
	fmt.Printf("%-12s %-7s %-7s %-6s %-7s %-8s %-9s %-10s %-8s\n",
		"perm", "β", "ρ", "m", "v", "bits", "bound", "β(lgρ/β+1)", "decode")

	for _, pi := range pis {
		rep, err := tradingfences.EncodePermutation(spec, tradingfences.Count, pi)
		if err != nil {
			return err
		}
		back, err := tradingfences.RecoverPermutationFromCode(spec, tradingfences.Count, n, rep.Code, rep.BitLen)
		if err != nil {
			return err
		}
		ok := "ok"
		for i := range pi {
			if back[i] != pi[i] {
				ok = "MISMATCH"
				break
			}
		}
		fmt.Printf("%-12s %-7d %-7d %-6d %-7d %-8d %-9.1f %-10.1f %-8s\n",
			permLabel(pi), rep.Fences, rep.RMRs, rep.Commands, rep.ParamSum,
			rep.BitLen, rep.Bound, rep.TheoremLHS, ok)
	}

	// Command census for the last permutation (the paper's Table 1).
	last := pis[len(pis)-1]
	rep, err := tradingfences.EncodePermutation(spec, tradingfences.Count, last)
	if err != nil {
		return err
	}
	c := rep.Census
	fmt.Printf("\nTable 1 command census for π = %s:\n", permLabel(last))
	fmt.Printf("  %-24s %d\n", "proceed", c.Proceed)
	fmt.Printf("  %-24s %d\n", "commit", c.Commit)
	fmt.Printf("  %-24s %d\n", "wait-hidden-commit(k)", c.WaitHiddenCommit)
	fmt.Printf("  %-24s %d\n", "wait-read-finish(k)", c.WaitReadFinish)
	fmt.Printf("  %-24s %d\n", "wait-local-finish(k)", c.WaitLocalFinish)
	fmt.Printf("  hidden commits executed in E_π: %d\n", rep.HiddenCommits)
	return nil
}

func permLabel(pi []int) string {
	if len(pi) <= 6 {
		parts := make([]string, len(pi))
		for i, v := range pi {
			parts[i] = strconv.Itoa(v)
		}
		return strings.Join(parts, ",")
	}
	// Identify the common shapes, otherwise hash-ish label.
	id, rev := true, true
	for i, v := range pi {
		if v != i {
			id = false
		}
		if v != len(pi)-1-i {
			rev = false
		}
	}
	switch {
	case id:
		return "identity"
	case rev:
		return "reverse"
	default:
		return fmt.Sprintf("random[%d..]", pi[0])
	}
}

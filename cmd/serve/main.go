// Command serve runs the verification daemon: an HTTP/JSON service that
// accepts check and synthesis jobs, runs them on a bounded worker pool
// through the supervised checker, and survives crashes, duplicate
// submissions and overload.
//
// Usage:
//
//	serve -addr :8080 -data ./serve-data -pool 2 -queue 64
//
// Submit a job:
//
//	curl -s -X POST localhost:8080/v1/jobs \
//	  -d '{"op":"check","lock":"bakery","n":3,"model":"pso","workers":2}'
//
// Identical submissions return the same job ID; completed results are
// served from the cache. SIGTERM/SIGINT drains: new work is refused,
// running jobs get -drain to finish or checkpoint, and a restart resumes
// whatever was in flight from the outbox journal in -data.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tradingfences/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	data := flag.String("data", "serve-data", "data directory (outbox journal + job checkpoints)")
	pool := flag.Int("pool", 2, "concurrent job workers")
	queue := flag.Int("queue", 64, "queued-job cap; a full queue sheds submissions with 429")
	drain := flag.Duration("drain", 10*time.Second, "grace period for running jobs on SIGTERM before they are cancelled onto their checkpoints")
	flag.Parse()

	if err := run(*addr, *data, *pool, *queue, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

func run(addr, data string, pool, queue int, drain time.Duration) error {
	srv, err := serve.New(serve.Config{
		DataDir:    data,
		Pool:       pool,
		QueueCap:   queue,
		DrainGrace: drain,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	srv.Start()
	fmt.Fprintf(os.Stderr, "serve: listening on %s, data in %s (pool=%d queue=%d)\n",
		ln.Addr(), data, pool, queue)

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "serve: %v: draining (grace %v)\n", sig, drain)
		// Refuse new work and park the jobs first (readyz flips to 503
		// for the whole drain), then close the HTTP side.
		srv.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "serve: drained cleanly")
		return nil
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

// Command serve runs the verification daemon: an HTTP/JSON service that
// accepts check and synthesis jobs, runs them on a bounded worker pool
// through the supervised checker, and survives crashes, duplicate
// submissions, overload and noisy neighbors.
//
// Usage:
//
//	serve -addr :8080 -data ./serve-data -pool 2 -queue 64 \
//	      -quota-queued 16 -quota-running 0 -compact-bytes 4194304
//
// Submit a job (client identity from X-API-Key or X-Client-ID; priority
// is a run parameter, not part of the job's identity):
//
//	curl -s -X POST localhost:8080/v1/jobs -H 'X-API-Key: team-a' \
//	  -d '{"op":"check","lock":"bakery","n":3,"model":"pso","priority":"high","workers":2}'
//
// Abort a queued or running job (idempotent; 409 once it is done/failed):
//
//	curl -s -X DELETE localhost:8080/v1/jobs/<id>
//
// Identical submissions return the same job ID; completed results are
// served from the cache. Scheduling is per-client deficit-round-robin
// under strict priority bands; a higher-priority submission preempts the
// lowest-priority running job onto its certified checkpoint (disable with
// -priorities=false). SIGTERM/SIGINT drains: new work is refused, running
// jobs get -drain to finish or checkpoint, the outbox is compacted, and a
// restart resumes whatever was in flight from the journal in -data.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tradingfences/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	data := flag.String("data", "serve-data", "data directory (outbox journal, compact snapshot, job checkpoints)")
	pool := flag.Int("pool", 2, "concurrent job workers")
	queue := flag.Int("queue", 64, "global queued-job cap; a full queue sheds submissions with 429")
	quotaQueued := flag.Int("quota-queued", 16, "per-client queued-job cap (0 = unlimited); a client over its cap is shed with a per-client 429")
	quotaRunning := flag.Int("quota-running", 0, "per-client running-job cap (0 = unlimited); enforced by the scheduler, not by shedding")
	priorities := flag.Bool("priorities", true, "enable checkpoint preemption: high-priority submissions evict the lowest-priority running job onto its checkpoint")
	compactBytes := flag.Int64("compact-bytes", 4<<20, "journal size that triggers outbox compaction (-1 disables)")
	drain := flag.Duration("drain", 10*time.Second, "grace period for running jobs on SIGTERM before they are cancelled onto their checkpoints")
	flag.Parse()

	cfg := serve.Config{
		DataDir:        *data,
		Pool:           *pool,
		QueueCap:       *queue,
		QuotaQueued:    *quotaQueued,
		QuotaRunning:   *quotaRunning,
		DisablePreempt: !*priorities,
		CompactBytes:   *compactBytes,
		DrainGrace:     *drain,
	}
	if *quotaQueued <= 0 {
		cfg.QuotaQueued = -1 // Config convention: 0 means "default", negative means unlimited
	}
	if *compactBytes < 0 {
		cfg.CompactBytes = -1
	}
	if err := run(*addr, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

func run(addr string, cfg serve.Config) error {
	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	srv.Start()
	fmt.Fprintf(os.Stderr, "serve: listening on %s, data in %s (pool=%d queue=%d quota-queued=%d quota-running=%d)\n",
		ln.Addr(), cfg.DataDir, cfg.Pool, cfg.QueueCap, cfg.QuotaQueued, cfg.QuotaRunning)

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "serve: %v: draining (grace %v)\n", sig, cfg.DrainGrace)
		// Refuse new work and park the jobs first (readyz flips to 503
		// for the whole drain), then close the HTTP side.
		srv.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "serve: drained cleanly")
		return nil
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

// Command tradeoff prints the empirical fence/RMR tradeoff of the
// generalized tournament family GT_f (Equations 1 and 2 of the paper):
// for each tree height f = 1..log2(n), the measured per-passage fences and
// RMRs of one uncontended passage under the PSO machine, the Equation 2
// budget f·n^(1/f), and the Equation 1 product f·(log2(r/f)+1)/log2(n).
//
// With -shape it instead prints the static structure of GT_f (the paper's
// Figure 1): the branching factor and the node counts per level.
//
// Usage:
//
//	tradeoff [-n 256] [-shape] [-f height]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tradingfences"
)

func main() {
	n := flag.Int("n", 256, "number of processes")
	shape := flag.Bool("shape", false, "print the GT_f tree structure (Figure 1) instead of measurements")
	fOnly := flag.Int("f", 0, "restrict to a single tree height (0 = all)")
	flag.Parse()

	if err := run(*n, *shape, *fOnly); err != nil {
		fmt.Fprintln(os.Stderr, "tradeoff:", err)
		os.Exit(1)
	}
}

func run(n int, shape bool, fOnly int) error {
	if shape {
		return printShapes(n, fOnly)
	}
	pts, err := tradingfences.TradeoffSweep(n)
	if err != nil {
		return err
	}
	fmt.Printf("GT_f tradeoff sweep, n = %d, PSO machine, one uncontended passage\n", n)
	fmt.Printf("%-6s %-6s %-8s %-8s %-12s %-10s %-14s\n",
		"f", "b", "fences", "RMRs", "f·n^(1/f)", "r/budget", "LHS/log2(n)")
	for _, pt := range pts {
		if fOnly != 0 && pt.Lock.F != fOnly {
			continue
		}
		sh := tradingfences.ShapeGT(n, pt.Lock.F)
		fmt.Printf("%-6d %-6d %-8d %-8d %-12.1f %-10.2f %-14.2f\n",
			pt.Lock.F, sh.Branching, pt.Fences, pt.RMRs, pt.RMRBound,
			float64(pt.RMRs)/pt.RMRBound, pt.Normalized)
	}
	fmt.Println()
	fmt.Println("Reading: fences grow ~linearly in f while RMRs fall ~geometrically;")
	fmt.Println("the product column stays Θ(1)·log2(n), matching Equation 1's tightness.")
	return nil
}

func printShapes(n, fOnly int) error {
	maxF := 1
	for p := 1; p < n; p *= 2 {
		maxF++
	}
	fmt.Printf("GT_f structure for n = %d (Figure 1): Bakery[b] at every node\n\n", n)
	for f := 1; f < maxF; f++ {
		if fOnly != 0 && f != fOnly {
			continue
		}
		sh := tradingfences.ShapeGT(n, f)
		fmt.Printf("GT_%d: height %d, branching b = %d\n", f, f, sh.Branching)
		fmt.Printf("  %-10s: %d leaves (one per process)\n", "leaves", n)
		for h, nodes := range sh.NodesPerLevel {
			label := fmt.Sprintf("height %d", h+1)
			if h == len(sh.NodesPerLevel)-1 {
				label += " (root)"
			}
			bar := strings.Repeat("▪", min(nodes, 64))
			fmt.Printf("  %-10s: %4d × Bakery[%d]  %s\n", label, nodes, sh.Branching, bar)
		}
		fmt.Println()
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Command lockstat prints the per-passage fence and RMR counts of the
// correct lock family across process counts — the Section 3 complexity
// claims: Bakery is O(1) fences / Θ(n) RMRs, the binary tournament tree is
// Θ(log n) / Θ(log n), and GT_f interpolates.
//
// Usage:
//
//	lockstat [-max 512]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"tradingfences"
)

func main() {
	max := flag.Int("max", 512, "largest process count (swept in powers of two from 2)")
	rmr := flag.String("rmr", "combined", "RMR accounting: combined (the paper's), dsm, or cc")
	dump := flag.String("dump", "", "print the program listing of a lock (bakery, tournament, peterson, gtF) instead of measuring")
	explain := flag.String("explain", "", "attribute a lock's RMR bill to its register arrays instead of measuring")
	dumpN := flag.Int("n", 4, "process count for -dump / -explain")
	flag.Parse()
	if *dump != "" {
		if err := runDump(*dump, *dumpN); err != nil {
			fmt.Fprintln(os.Stderr, "lockstat:", err)
			os.Exit(1)
		}
		return
	}
	if *explain != "" {
		if err := runExplain(*explain, *dumpN); err != nil {
			fmt.Fprintln(os.Stderr, "lockstat:", err)
			os.Exit(1)
		}
		return
	}
	acct, err := parseAcct(*rmr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lockstat:", err)
		os.Exit(1)
	}
	if err := run(*max, acct); err != nil {
		fmt.Fprintln(os.Stderr, "lockstat:", err)
		os.Exit(1)
	}
}

func parseLock(name string) (tradingfences.LockSpec, error) {
	kinds := map[string]tradingfences.LockKind{
		"bakery":           tradingfences.Bakery,
		"bakery-tso":       tradingfences.BakeryTSO,
		"bakery-literal":   tradingfences.BakeryLiteral,
		"bakery-nofence":   tradingfences.BakeryNoFence,
		"peterson":         tradingfences.Peterson,
		"peterson-tso":     tradingfences.PetersonTSO,
		"peterson-nofence": tradingfences.PetersonNoFence,
		"tournament":       tradingfences.Tournament,
		"filter":           tradingfences.Filter,
	}
	spec := tradingfences.LockSpec{}
	if k, ok := kinds[name]; ok {
		spec.Kind = k
	} else if f, ok := strings.CutPrefix(name, "gt"); ok {
		h, err := strconv.Atoi(f)
		if err != nil || h < 1 {
			return spec, fmt.Errorf("bad GT height in %q", name)
		}
		spec.Kind, spec.F = tradingfences.GT, h
	} else {
		return spec, fmt.Errorf("unknown lock %q", name)
	}
	return spec, nil
}

func runExplain(name string, n int) error {
	spec, err := parseLock(name)
	if err != nil {
		return err
	}
	br, err := tradingfences.ExplainRMRs(spec, n)
	if err != nil {
		return err
	}
	fmt.Printf("RMR attribution: %v, n = %d, sequential passages, PSO, combined accounting\n\n", spec, n)
	fmt.Print(br.Table)
	return nil
}

func runDump(name string, n int) error {
	spec, err := parseLock(name)
	if err != nil {
		return err
	}
	sys, err := tradingfences.NewSystem(spec, tradingfences.Count, n)
	if err != nil {
		return err
	}
	a := sys.Analyze()
	fmt.Printf("// %v, n = %d: %d static reads, %d writes, %d fences, %d locals, loop depth %d\n",
		spec, n, a.Reads, a.Writes, a.Fences, a.Locals, a.MaxLoopDepth)
	fmt.Print(sys.Listing())
	fmt.Println("\n// register map:")
	fmt.Print(sys.DescribeRegisters())
	return nil
}

func parseAcct(s string) (tradingfences.RMRModel, error) {
	switch s {
	case "combined":
		return tradingfences.CombinedModel, nil
	case "dsm":
		return tradingfences.DSMModel, nil
	case "cc":
		return tradingfences.CCModel, nil
	default:
		return 0, fmt.Errorf("unknown RMR accounting %q (want combined, dsm or cc)", s)
	}
}

func run(max int, acct tradingfences.RMRModel) error {
	specs := []tradingfences.LockSpec{
		{Kind: tradingfences.Bakery},
		{Kind: tradingfences.GT, F: 2},
		{Kind: tradingfences.GT, F: 4},
		{Kind: tradingfences.Tournament},
	}
	fmt.Printf("Per-passage cost (uncontended, PSO machine, %v RMR accounting); cells are fences/RMRs\n", acct)
	fmt.Printf("%-8s", "n")
	for _, s := range specs {
		fmt.Printf(" %-14s", s)
	}
	fmt.Println()
	for n := 2; n <= max; n *= 2 {
		fmt.Printf("%-8d", n)
		for _, s := range specs {
			pt, err := tradingfences.MeasureLockIn(s, n, acct)
			if err != nil {
				return err
			}
			fmt.Printf(" %-14s", fmt.Sprintf("%d/%d", pt.Fences, pt.RMRs))
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("Reading: Bakery's fence column is flat while its RMR column grows")
	fmt.Println("linearly; the tournament tree grows logarithmically in both; GT_f")
	fmt.Println("interpolates with O(f) fences and O(f·n^(1/f)) RMRs.")
	return nil
}

// Command lockstat prints the per-passage fence and RMR counts of the
// correct lock family across process counts — the Section 3 complexity
// claims: Bakery is O(1) fences / Θ(n) RMRs, the binary tournament tree is
// Θ(log n) / Θ(log n), and GT_f interpolates.
//
// Usage:
//
//	lockstat [-max 512]
//	lockstat -check peterson -model pso -symmetry
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"tradingfences"
)

func main() {
	os.Exit(realMain())
}

// realMain carries main's body so the deferred profile writers run before
// the process exits (os.Exit skips defers).
func realMain() int {
	max := flag.Int("max", 512, "largest process count (swept in powers of two from 2)")
	rmr := flag.String("rmr", "combined", "RMR accounting: combined (the paper's), dsm, or cc")
	dump := flag.String("dump", "", "print the program listing of a lock (bakery, tournament, peterson, gtF) instead of measuring")
	explain := flag.String("explain", "", "attribute a lock's RMR bill to its register arrays instead of measuring")
	dumpN := flag.Int("n", 4, "process count for -dump / -explain / -check")
	chk := flag.String("check", "", "model-check mutual exclusion of a lock instead of measuring (recoverable locks rtas, rbakery, rtournament, ... route through the RME checker)")
	model := flag.String("model", "pso", "memory model for -check: sc, tso, pso")
	crashes := flag.Int("crashes", 0, "adversarial crash budget for -check (recoverable locks recover, plain locks cold-restart)")
	states := flag.Int("states", 0, "state budget for -check (0 = unlimited)")
	workers := flag.Int("workers", 0, "worker pool for -check (0 = sequential explorer; >1 selects the work-stealing parallel engine, 1 is its bit-identical single-threaded mode)")
	symmetry := flag.Bool("symmetry", false, "enable process-symmetry reduction for -check (no-op for locks without a symmetry declaration)")
	por := flag.Bool("por", false, "enable commit-step partial-order reduction for -check (verdict-preserving; a complete run is still a full proof)")
	reorderBound := flag.Int("reorder-bound", 0, "reorder-bounded buffer semantics for -check: each buffered write may reorder past at most this many later same-process operations (0 = full semantics; a violation-free bounded run is a bounded certificate, not a proof)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile (pprof) to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (pprof) to this file on exit")
	flag.Parse()
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lockstat:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "lockstat:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer writeHeapProfile(*memprofile)
	}
	err := func() error {
		switch {
		case *chk != "":
			return runCheck(*chk, *dumpN, *model, *states, *workers, *crashes, *symmetry, *por, *reorderBound)
		case *dump != "":
			return runDump(*dump, *dumpN)
		case *explain != "":
			return runExplain(*explain, *dumpN)
		default:
			acct, err := parseAcct(*rmr)
			if err != nil {
				return err
			}
			return run(*max, acct)
		}
	}()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lockstat:", err)
		return 1
	}
	return 0
}

// writeHeapProfile snapshots the heap to path after a GC, so the profile
// reflects retained memory rather than garbage awaiting collection.
func writeHeapProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lockstat:", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "lockstat:", err)
	}
}

func parseLock(name string) (tradingfences.LockSpec, error) {
	kinds := map[string]tradingfences.LockKind{
		"bakery":           tradingfences.Bakery,
		"bakery-tso":       tradingfences.BakeryTSO,
		"bakery-literal":   tradingfences.BakeryLiteral,
		"bakery-nofence":   tradingfences.BakeryNoFence,
		"peterson":         tradingfences.Peterson,
		"peterson-tso":     tradingfences.PetersonTSO,
		"peterson-nofence": tradingfences.PetersonNoFence,
		"tournament":       tradingfences.Tournament,
		"filter":           tradingfences.Filter,
	}
	spec := tradingfences.LockSpec{}
	if k, ok := kinds[name]; ok {
		spec.Kind = k
	} else if f, ok := strings.CutPrefix(name, "gt"); ok {
		h, err := strconv.Atoi(f)
		if err != nil || h < 1 {
			return spec, fmt.Errorf("bad GT height in %q", name)
		}
		spec.Kind, spec.F = tradingfences.GT, h
	} else {
		return spec, fmt.Errorf("unknown lock %q", name)
	}
	return spec, nil
}

func runCheck(name string, n int, model string, states, workers, crashes int, symmetry, por bool, reorderBound int) error {
	mm, err := tradingfences.ParseMemoryModel(model)
	if err != nil {
		return err
	}
	opts := tradingfences.CheckOptions{
		Budget:       tradingfences.Budget{MaxStates: states},
		Workers:      workers,
		Symmetry:     symmetry,
		POR:          por,
		ReorderBound: reorderBound,
	}
	if crashes > 0 {
		opts.Faults = &tradingfences.FaultPlan{MaxCrashes: crashes}
	}
	var (
		v    *tradingfences.MutexVerdict
		cerr error
		kind = "mutex"
		what = name
	)
	start := time.Now()
	if tradingfences.IsRMELock(name) {
		// Recoverable locks route through the RME checker: crashes recover
		// instead of cold-restarting, and the verdict carries per-passage
		// RMR watermarks.
		kind = "rme"
		v, cerr = tradingfences.CheckRMECtx(context.Background(), name, n, 1, mm, opts)
	} else {
		spec, perr := parseLock(name)
		if perr != nil {
			return perr
		}
		what = spec.String()
		v, cerr = tradingfences.CheckMutexCtx(context.Background(), spec, n, 1, mm, opts)
	}
	wall := time.Since(start)
	if v == nil {
		return cerr
	}
	verdict := "UNDECIDED"
	switch {
	case v.Violated:
		verdict = "VIOLATED"
	case v.Proved:
		verdict = "PROVED"
	case v.Coverage.BoundedComplete:
		// Complete over the reorder-bounded graph only: no violation up to
		// the bound, not a proof of the full semantics.
		verdict = fmt.Sprintf("BOUNDED-COMPLETE(k=%d)", v.Coverage.ReorderBound)
	}
	sym := ""
	if v.SymmetryApplied {
		sym = " (symmetry orbits)"
	}
	if v.Coverage.POR {
		sym += " (POR)"
	}
	budget := ""
	if crashes > 0 {
		budget = fmt.Sprintf(", crashes<=%d", crashes)
	}
	fmt.Printf("%s %s: %s under %v, n=%d%s, %d states%s, mode=%s, %.0f ms\n",
		kind, what, verdict, mm, n, budget, v.States, sym, v.Mode, float64(wall.Microseconds())/1000)
	if ps := v.Passages; ps != nil && ps.Count > 0 {
		fmt.Printf("max RMRs/passage: CC=%d DSM=%d (%d passages; Chan-Woelfel log n/log log n = %.2f)\n",
			ps.MaxCC, ps.MaxDSM, ps.Count, tradingfences.ChanWoelfelBound(n))
	}
	if v.Violated {
		fmt.Printf("witness: %s\n", v.WitnessSchedule)
	}
	if cerr != nil && !tradingfences.IsLimit(cerr) {
		return cerr
	}
	return nil
}

func runExplain(name string, n int) error {
	spec, err := parseLock(name)
	if err != nil {
		return err
	}
	br, err := tradingfences.ExplainRMRs(spec, n)
	if err != nil {
		return err
	}
	fmt.Printf("RMR attribution: %v, n = %d, sequential passages, PSO, combined accounting\n\n", spec, n)
	fmt.Print(br.Table)
	return nil
}

func runDump(name string, n int) error {
	spec, err := parseLock(name)
	if err != nil {
		return err
	}
	sys, err := tradingfences.NewSystem(spec, tradingfences.Count, n)
	if err != nil {
		return err
	}
	a := sys.Analyze()
	fmt.Printf("// %v, n = %d: %d static reads, %d writes, %d fences, %d locals, loop depth %d\n",
		spec, n, a.Reads, a.Writes, a.Fences, a.Locals, a.MaxLoopDepth)
	fmt.Print(sys.Listing())
	fmt.Println("\n// register map:")
	fmt.Print(sys.DescribeRegisters())
	return nil
}

func parseAcct(s string) (tradingfences.RMRModel, error) {
	switch s {
	case "combined":
		return tradingfences.CombinedModel, nil
	case "dsm":
		return tradingfences.DSMModel, nil
	case "cc":
		return tradingfences.CCModel, nil
	default:
		return 0, fmt.Errorf("unknown RMR accounting %q (want combined, dsm or cc)", s)
	}
}

func run(max int, acct tradingfences.RMRModel) error {
	specs := []tradingfences.LockSpec{
		{Kind: tradingfences.Bakery},
		{Kind: tradingfences.GT, F: 2},
		{Kind: tradingfences.GT, F: 4},
		{Kind: tradingfences.Tournament},
	}
	fmt.Printf("Per-passage cost (uncontended, PSO machine, %v RMR accounting); cells are fences/RMRs\n", acct)
	fmt.Printf("%-8s", "n")
	for _, s := range specs {
		fmt.Printf(" %-14s", s)
	}
	fmt.Println()
	for n := 2; n <= max; n *= 2 {
		fmt.Printf("%-8d", n)
		for _, s := range specs {
			pt, err := tradingfences.MeasureLockIn(s, n, acct)
			if err != nil {
				return err
			}
			fmt.Printf(" %-14s", fmt.Sprintf("%d/%d", pt.Fences, pt.RMRs))
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("Reading: Bakery's fence column is flat while its RMR column grows")
	fmt.Println("linearly; the tournament tree grows logarithmically in both; GT_f")
	fmt.Println("interpolates with O(f) fences and O(f·n^(1/f)) RMRs.")
	return nil
}

// Command experiments regenerates, in one run, the measured side of every
// table in EXPERIMENTS.md: the Table 1 census (T1), the GT_f structure
// (F1), the Section 3 complexity claims (E1, E2), the tradeoff sweep and
// product (E3, E5), the lower-bound encoding (E4), the separation,
// liveness and FCFS matrices (E6, E8, E12), the ordering objects (E7), the
// accounting comparison (E9), amortization (E10), contention (E11), the
// fence-placement synthesis frontier (E13) and the recoverable-mutex
// passage costs against the Chan–Woelfel lower bound (E14).
//
// Output is markdown by default (so the results file can be refreshed
// directly) or JSON with -json (for downstream tooling).
//
// Usage:
//
//	experiments [-quick] [-json] [-only E3,E4] [-timeout 5m] [-workers 4]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"tradingfences"
)

// table is one experiment's result set, renderable as markdown or JSON.
type table struct {
	Note    string   `json:"note,omitempty"`
	Headers []string `json:"headers"`
	Rows    [][]any  `json:"rows"`
}

func (t *table) add(cells ...any) { t.Rows = append(t.Rows, cells) }

func (t *table) markdown() string {
	var b strings.Builder
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n\n", t.Note)
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(t.Headers, " | "))
	seps := make([]string, len(t.Headers))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(&b, "|%s|\n", strings.Join(seps, "|"))
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for i, c := range row {
			switch v := c.(type) {
			case float64:
				cells[i] = fmt.Sprintf("%.2f", v)
			default:
				cells[i] = fmt.Sprint(v)
			}
		}
		fmt.Fprintf(&b, "| %s |\n", strings.Join(cells, " | "))
	}
	return b.String()
}

type experiment struct {
	id   string
	name string
	run  func(ctx context.Context, quick bool) (*table, error)
}

// workers is the -workers flag: exhaustive checks (E6's matrix) fan their
// frontier over this many goroutines when > 0.
var workers int

func main() {
	quick := flag.Bool("quick", false, "smaller sizes for a fast smoke run")
	only := flag.String("only", "", "comma-separated experiment IDs to run (default: all)")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of markdown")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the whole run (0 = none)")
	flag.IntVar(&workers, "workers", 0, "worker goroutines for exhaustive model checking (0 = sequential; verdicts are identical either way)")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			want[id] = true
		}
	}

	all := []experiment{
		{"T1", "Table 1 command census", runT1},
		{"F1", "Figure 1 GT_f structure", runF1},
		{"E1", "Bakery complexity", runE1},
		{"E2", "Tournament complexity", runE2},
		{"E3", "GT_f tradeoff sweep (Equation 2)", runE3},
		{"E4", "Lower-bound encoding (Theorem 4.2)", runE4},
		{"E5", "Tradeoff product (Equation 1)", runE5},
		{"E6", "Memory-model separation", runE6},
		{"E7", "Ordering objects", runE7},
		{"E8", "Liveness", runE8},
		{"E9", "RMR accountings", runE9},
		{"E10", "Repeated-passage amortization", runE10},
		{"E11", "Contention", runE11},
		{"E12", "FCFS fairness", runE12},
		{"E13", "Fence-placement synthesis frontier", runE13},
		{"E14", "Recoverable mutual exclusion (RME) passage costs", runE14},
		{"E15", "Certified state-space reduction (POR + reorder bounds)", runE15},
	}

	results := make(map[string]*table)
	for _, e := range all {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		tbl, err := e.run(ctx, *quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		if *asJSON {
			results[e.id] = tbl
			continue
		}
		fmt.Printf("## %s — %s\n\n%s\n", e.id, e.name, tbl.markdown())
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
}

func pick(quick bool, small, full int) int {
	if quick {
		return small
	}
	return full
}

func runT1(ctx context.Context, quick bool) (*table, error) {
	n := pick(quick, 8, 16)
	t := &table{
		Note:    fmt.Sprintf("Count objects, n = %d, random π", n),
		Headers: []string{"object", "proceed", "commit", "wait-hidden-commit", "wait-read-finish", "wait-local-finish"},
	}
	for _, spec := range []tradingfences.LockSpec{{Kind: tradingfences.Bakery}, {Kind: tradingfences.Tournament}} {
		rep, err := tradingfences.EncodePermutationCtx(ctx, spec, tradingfences.Count, tradingfences.RandomPerm(n, 1), tradingfences.Budget{})
		if err != nil {
			return nil, err
		}
		c := rep.Census
		t.add("Count over "+spec.String(), c.Proceed, c.Commit, c.WaitHiddenCommit, c.WaitReadFinish, c.WaitLocalFinish)
	}
	return t, nil
}

func runF1(ctx context.Context, quick bool) (*table, error) {
	n := pick(quick, 16, 64)
	t := &table{
		Note:    fmt.Sprintf("n = %d", n),
		Headers: []string{"f", "branching", "nodes per level"},
	}
	for f := 1; f <= 4; f++ {
		sh := tradingfences.ShapeGT(n, f)
		t.add(f, sh.Branching, fmt.Sprint(sh.NodesPerLevel))
	}
	return t, nil
}

func sweepRows(spec tradingfences.LockSpec, ns []int) (*table, error) {
	t := &table{Headers: []string{"n", "fences/passage", "RMRs/passage"}}
	for _, n := range ns {
		pt, err := tradingfences.MeasureLock(spec, n)
		if err != nil {
			return nil, err
		}
		t.add(n, pt.Fences, pt.RMRs)
	}
	return t, nil
}

func complexityNs(quick bool) []int {
	if quick {
		return []int{4, 16}
	}
	return []int{4, 16, 64, 256}
}

func runE1(ctx context.Context, quick bool) (*table, error) {
	return sweepRows(tradingfences.LockSpec{Kind: tradingfences.Bakery}, complexityNs(quick))
}

func runE2(ctx context.Context, quick bool) (*table, error) {
	return sweepRows(tradingfences.LockSpec{Kind: tradingfences.Tournament}, complexityNs(quick))
}

func runE3(ctx context.Context, quick bool) (*table, error) {
	n := pick(quick, 64, 256)
	pts, err := tradingfences.TradeoffSweepCtx(ctx, n)
	if err != nil {
		return nil, err
	}
	t := &table{
		Note:    fmt.Sprintf("n = %d", n),
		Headers: []string{"f", "fences", "RMRs", "f·n^(1/f)", "RMRs/budget"},
	}
	for _, pt := range pts {
		t.add(pt.Lock.F, pt.Fences, pt.RMRs, pt.RMRBound, float64(pt.RMRs)/pt.RMRBound)
	}
	return t, nil
}

func runE4(ctx context.Context, quick bool) (*table, error) {
	type cfg struct {
		spec tradingfences.LockSpec
		n    int
	}
	cfgs := []cfg{
		{tradingfences.LockSpec{Kind: tradingfences.Bakery}, 16},
		{tradingfences.LockSpec{Kind: tradingfences.Bakery}, 32},
		{tradingfences.LockSpec{Kind: tradingfences.GT, F: 2}, 32},
	}
	if quick {
		cfgs = cfgs[:1]
	}
	t := &table{Headers: []string{"lock", "n", "β", "ρ", "bits/lg(n!)", "β(lg(ρ/β)+1)/lg(n!)"}}
	for _, c := range cfgs {
		rep, err := tradingfences.EncodePermutationCtx(ctx, c.spec, tradingfences.Count, tradingfences.RandomPerm(c.n, 7), tradingfences.Budget{})
		if err != nil {
			return nil, err
		}
		t.add(c.spec.String(), c.n, rep.Fences, rep.RMRs,
			float64(rep.BitLen)/rep.InfoContent, rep.TheoremLHS/rep.InfoContent)
	}
	return t, nil
}

func runE5(ctx context.Context, quick bool) (*table, error) {
	n := pick(quick, 64, 256)
	t := &table{
		Note:    fmt.Sprintf("n = %d", n),
		Headers: []string{"lock", "f·(lg(r/f)+1)/lg n"},
	}
	for _, spec := range []tradingfences.LockSpec{
		{Kind: tradingfences.Bakery},
		{Kind: tradingfences.GT, F: 2},
		{Kind: tradingfences.GT, F: 4},
		{Kind: tradingfences.Tournament},
		{Kind: tradingfences.Filter},
	} {
		pt, err := tradingfences.MeasureLock(spec, n)
		if err != nil {
			return nil, err
		}
		t.add(spec.String(), pt.Normalized)
	}
	return t, nil
}

func runE6(ctx context.Context, quick bool) (*table, error) {
	states := pick(quick, 1_000_000, 3_000_000)
	rows, err := tradingfences.SeparationMatrixWithOptions(ctx, tradingfences.CheckOptions{
		Budget:  tradingfences.Budget{MaxStates: states},
		Workers: workers,
	})
	if err != nil {
		return nil, err
	}
	t := &table{Headers: []string{"lock", "fences", "SC", "TSO", "PSO"}}
	cell := func(v *tradingfences.MutexVerdict) string {
		switch {
		case v.Violated:
			return "violated"
		case v.Proved:
			return fmt.Sprintf("proved (%d st)", v.States)
		default:
			return "inconclusive"
		}
	}
	for _, row := range rows {
		t.add(row.Lock.String(), row.Fences,
			cell(row.Verdicts[tradingfences.SC]),
			cell(row.Verdicts[tradingfences.TSO]),
			cell(row.Verdicts[tradingfences.PSO]))
	}
	return t, nil
}

func runE7(ctx context.Context, quick bool) (*table, error) {
	n := pick(quick, 8, 12)
	t := &table{Headers: []string{"object", "fences/proc", "RMRs/proc", "round trip"}}
	for _, obj := range []tradingfences.ObjectKind{tradingfences.Count, tradingfences.FetchAndIncrement, tradingfences.QueueEnqueue} {
		pi := tradingfences.RandomPerm(n, 3)
		spec := tradingfences.LockSpec{Kind: tradingfences.Bakery}
		rep, err := tradingfences.EncodePermutationCtx(ctx, spec, obj, pi, tradingfences.Budget{})
		if err != nil {
			return nil, err
		}
		back, err := tradingfences.RecoverPermutationFromCode(spec, obj, n, rep.Code, rep.BitLen)
		if err != nil {
			return nil, err
		}
		ok := "ok"
		for i := range pi {
			if back[i] != pi[i] {
				ok = "MISMATCH"
			}
		}
		t.add(obj.String(), float64(rep.Fences)/float64(n), float64(rep.RMRs)/float64(n), ok)
	}
	return t, nil
}

func runE8(ctx context.Context, quick bool) (*table, error) {
	states := pick(quick, 1_000_000, 3_000_000)
	t := &table{Headers: []string{"lock", "states", "deadlock-free", "weakly obstruction-free"}}
	for _, spec := range []tradingfences.LockSpec{
		{Kind: tradingfences.Peterson},
		{Kind: tradingfences.Bakery},
		{Kind: tradingfences.Tournament},
		{Kind: tradingfences.DeadlockDemo},
		{Kind: tradingfences.RendezvousDemo},
	} {
		v, err := tradingfences.CheckLivenessCtx(ctx, spec, 2, 1, tradingfences.PSO,
			tradingfences.CheckOptions{Budget: tradingfences.Budget{MaxStates: states}})
		if err != nil {
			return nil, err
		}
		t.add(spec.String(), v.States, v.DeadlockFree, v.WeakObstructionFree)
	}
	return t, nil
}

func runE9(ctx context.Context, quick bool) (*table, error) {
	n := pick(quick, 16, 64)
	t := &table{
		Note:    fmt.Sprintf("n = %d, RMRs per passage", n),
		Headers: []string{"lock", "combined", "DSM", "CC"},
	}
	for _, spec := range []tradingfences.LockSpec{{Kind: tradingfences.Bakery}, {Kind: tradingfences.Tournament}} {
		var rmrs [3]int64
		for i, acct := range tradingfences.RMRModels() {
			pt, err := tradingfences.MeasureLockIn(spec, n, acct)
			if err != nil {
				return nil, err
			}
			rmrs[i] = pt.RMRs
		}
		t.add(spec.String(), rmrs[0], rmrs[1], rmrs[2])
	}
	return t, nil
}

func runE10(ctx context.Context, quick bool) (*table, error) {
	n := pick(quick, 16, 64)
	t := &table{
		Note:    fmt.Sprintf("n = %d, 8 passages per process", n),
		Headers: []string{"lock", "first RMRs", "amortized RMRs/passage", "fences/passage"},
	}
	for _, spec := range []tradingfences.LockSpec{{Kind: tradingfences.Bakery}, {Kind: tradingfences.Tournament}} {
		pt, err := tradingfences.MeasureLockRepeated(spec, n, 8, tradingfences.CombinedModel)
		if err != nil {
			return nil, err
		}
		t.add(spec.String(), pt.FirstRMRs, pt.AmortizedRMRs, pt.AmortizedFences)
	}
	return t, nil
}

func runE11(ctx context.Context, quick bool) (*table, error) {
	n := pick(quick, 8, 16)
	t := &table{
		Note:    fmt.Sprintf("n = %d, fair round-robin", n),
		Headers: []string{"lock", "solo RMRs", "contended RMRs"},
	}
	for _, spec := range []tradingfences.LockSpec{
		{Kind: tradingfences.Bakery},
		{Kind: tradingfences.GT, F: 2},
		{Kind: tradingfences.Tournament},
	} {
		pt, err := tradingfences.MeasureLockContended(spec, n)
		if err != nil {
			return nil, err
		}
		t.add(spec.String(), pt.SoloRMRs, pt.ContendedRMRs)
	}
	return t, nil
}

func runE12(ctx context.Context, quick bool) (*table, error) {
	states := pick(quick, 2_000_000, 8_000_000)
	t := &table{Headers: []string{"lock", "n", "product states", "verdict"}}
	cases := []struct {
		spec tradingfences.LockSpec
		n    int
	}{
		{tradingfences.LockSpec{Kind: tradingfences.Bakery}, 2},
		{tradingfences.LockSpec{Kind: tradingfences.Peterson}, 2},
		{tradingfences.LockSpec{Kind: tradingfences.GT, F: 2}, 3},
	}
	for _, c := range cases {
		v, err := tradingfences.CheckFCFSCtx(ctx, c.spec, c.n, tradingfences.PSO,
			tradingfences.CheckOptions{Budget: tradingfences.Budget{MaxStates: states}})
		if err != nil {
			return nil, err
		}
		verdict := "FCFS proved"
		if v.Violated {
			verdict = fmt.Sprintf("violated (p%d overtook p%d)", v.Violator, v.Overtaken)
		}
		t.add(c.spec.String(), c.n, v.States, verdict)
	}
	return t, nil
}

// E13: fence-placement synthesis. Strip a lock's fences, recover all
// minimal safe placements per model, and compare the synthesized Pareto
// frontier against the hand-written GT_1 point at the same n. The models
// column reproduces the separation as a synthesis statement: the minimal
// placement grows as write ordering weakens.
func runE13(ctx context.Context, quick bool) (*table, error) {
	states := pick(quick, 500_000, 2_000_000)
	t := &table{
		Note: "Synthesized minimal fence placements (exhaustive oracle; sites are " +
			"numbered per lock; `{}` = no fences needed). Each frontier point lists " +
			"the measured per-passage (fences, RMRs); `hand` is the hand-written " +
			"lock's own point for the same base algorithm.",
		Headers: []string{"lock", "n", "model", "minimal placements", "frontier (f, r)", "hand (f, r)", "oracle calls", "pruned", "verdict"},
	}
	cases := []struct {
		spec tradingfences.LockSpec
		n    int
	}{
		{tradingfences.LockSpec{Kind: tradingfences.Peterson}, 2},
		{tradingfences.LockSpec{Kind: tradingfences.Bakery}, 2},
	}
	for _, c := range cases {
		hand, err := tradingfences.MeasureLock(c.spec, c.n)
		if err != nil {
			return nil, err
		}
		for _, m := range tradingfences.Models() {
			res, err := tradingfences.SynthesizeFences(ctx, c.spec, c.n, m, tradingfences.SynthOptions{
				Oracle: tradingfences.OracleExhaustive,
				Budget: tradingfences.Budget{MaxStates: states},
			})
			if err != nil {
				return nil, err
			}
			var mins, front []string
			for _, p := range res.Minimal {
				mins = append(mins, fmt.Sprintf("{%s}", joinInts(p.Sites)))
			}
			for _, p := range res.Frontier {
				front = append(front, fmt.Sprintf("({%s}: %d, %d)", joinInts(p.Sites), p.Fences, p.RMRs))
			}
			pruned := 0
			for _, r := range res.Refuted {
				if r.Pruned {
					pruned++
				}
			}
			t.add(c.spec.String(), c.n, m.String(),
				strings.Join(mins, " "), strings.Join(front, " "),
				fmt.Sprintf("(%d, %d)", hand.Fences, hand.RMRs),
				res.OracleCalls, pruned, res.Verdict)
		}
	}
	return t, nil
}

// E14: recoverable mutual exclusion. Check each recoverable lock under a
// one-crash adversary and report the worst remote-memory-reference count
// any explored recoverable passage paid, under both the CC and DSM rules,
// against the Chan–Woelfel Ω(log n / log log n) reference. The maxima are
// watermarks over the explored spanning tree: on a proved verdict they
// are the exact worst case within the crash budget; on a budget-capped
// run they are still certified lower bounds (some passage really paid
// that much), so the cell is marked ">=".
func runE14(ctx context.Context, quick bool) (*table, error) {
	states := pick(quick, 200_000, 4_000_000)
	ns := []int{2, 3, 4}
	if quick {
		ns = []int{2, 3}
	}
	t := &table{
		Note: "Recoverable locks under an adversarial 1-crash budget (SC machine; " +
			"crashes re-enter the recovery section with durable locals). " +
			"max CC / max DSM are per-recoverable-passage watermarks; `>=` marks " +
			"budget-capped runs where the watermark is a certified lower bound " +
			"rather than the proven worst case. `lg n / lg lg n` is the " +
			"Chan–Woelfel RME lower-bound reference.",
		Headers: []string{"lock", "n", "verdict", "states", "passages", "max CC", "max DSM", "lg n / lg lg n"},
	}
	for _, name := range []string{"rtas", "rbakery", "rtournament"} {
		for _, n := range ns {
			opts := tradingfences.CheckOptions{
				Budget:  tradingfences.Budget{MaxStates: states},
				Workers: workers,
				Faults:  &tradingfences.FaultPlan{MaxCrashes: 1},
			}
			v, err := tradingfences.CheckRMECtx(ctx, name, n, 1, tradingfences.SC, opts)
			if v == nil {
				return nil, err
			}
			verdict, mark := "inconclusive", ">="
			switch {
			case v.Violated:
				verdict = "VIOLATED"
			case v.Proved:
				verdict, mark = "proved", ""
			}
			ps := v.Passages
			if ps == nil {
				ps = &tradingfences.PassageStats{}
			}
			t.add(name, n, verdict, v.States, ps.Count,
				mark+fmt.Sprint(ps.MaxCC), mark+fmt.Sprint(ps.MaxDSM),
				tradingfences.ChanWoelfelBound(n))
		}
	}
	return t, nil
}

// E15: certified state-space reduction. Re-check a buffered-model slice
// of the suite under commit-step partial-order reduction and under a
// k=1 reorder bound, cross-checking in-process that POR preserves the
// full verdict and that a bounded run never claims a proof and never
// reports a violation the full semantics lacks. The multi-minute
// budget-trip rows (bakery/gt2 n=4 proved under budgets the full
// explorer trips) are lockstat runs recorded in BENCH_check.json's
// reduction section, not re-run here.
func runE15(ctx context.Context, quick bool) (*table, error) {
	states := pick(quick, 300_000, 1_000_000)
	t := &table{
		Note: "Full semantics vs commit-step POR (verdict-preserving) and vs a " +
			"k=1 reorder bound (under-approximate: violations are genuine, " +
			"violation-free completions are bounded certificates, never proofs). " +
			"`states` is the visited count on complete runs and the " +
			"states-to-witness on VIOLATED rows; `vs full` compares the two. " +
			"With -workers > 1 the POR engine is ample-only (no sleep sets), so " +
			"reduced counts grow but verdicts hold. The n >= 4 budget-trip rows " +
			"live in BENCH_check.json's reduction section.",
		Headers: []string{"lock", "n", "model", "mode", "verdict", "states", "vs full"},
	}
	runOne := func(spec tradingfences.LockSpec, n int, model tradingfences.MemoryModel, por bool, bound int) (*tradingfences.MutexVerdict, error) {
		opts := tradingfences.CheckOptions{
			Budget:       tradingfences.Budget{MaxStates: states},
			Workers:      workers,
			POR:          por,
			ReorderBound: bound,
		}
		return tradingfences.CheckMutexCtx(ctx, spec, n, 1, model, opts)
	}
	verdict := func(v *tradingfences.MutexVerdict) string {
		switch {
		case v.Violated:
			return "VIOLATED"
		case v.Coverage.BoundedComplete:
			return fmt.Sprintf("BOUNDED-COMPLETE(k=%d)", v.Coverage.ReorderBound)
		case v.Proved:
			return "proved"
		}
		return "inconclusive"
	}
	cases := []struct {
		spec  tradingfences.LockSpec
		n     int
		model tradingfences.MemoryModel
		por   bool
		bound int
	}{
		{tradingfences.LockSpec{Kind: tradingfences.Bakery}, 3, tradingfences.PSO, true, 0},
		{tradingfences.LockSpec{Kind: tradingfences.GT, F: 2}, 3, tradingfences.PSO, true, 0},
		{tradingfences.LockSpec{Kind: tradingfences.PetersonNoFence}, 2, tradingfences.PSO, false, 1},
		{tradingfences.LockSpec{Kind: tradingfences.BakeryNoFence}, 2, tradingfences.TSO, false, 1},
	}
	for _, c := range cases {
		full, err := runOne(c.spec, c.n, c.model, false, 0)
		if err != nil {
			return nil, err
		}
		red, err := runOne(c.spec, c.n, c.model, c.por, c.bound)
		if err != nil {
			return nil, err
		}
		mode := "POR"
		if c.bound > 0 {
			mode = fmt.Sprintf("k=%d", c.bound)
		}
		if c.por && (red.Violated != full.Violated || red.Proved != full.Proved) {
			return nil, fmt.Errorf("E15: POR verdict diverged from full on %s n=%d %s", c.spec, c.n, c.model)
		}
		if c.bound > 0 && red.Violated && !full.Violated {
			return nil, fmt.Errorf("E15: bounded run found a violation the full semantics lacks on %s n=%d %s", c.spec, c.n, c.model)
		}
		if c.bound > 0 && red.Proved {
			return nil, fmt.Errorf("E15: bounded run claimed a full proof on %s n=%d %s", c.spec, c.n, c.model)
		}
		ratio := "-"
		if red.States > 0 {
			ratio = fmt.Sprintf("%.2fx", float64(full.States)/float64(red.States))
		}
		t.add(c.spec.String(), c.n, c.model.String(), "full", verdict(full), full.States, "-")
		t.add(c.spec.String(), c.n, c.model.String(), mode, verdict(red), red.States, ratio)
	}
	return t, nil
}

func joinInts(ids []int) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprint(id)
	}
	return strings.Join(parts, ",")
}

// Command separation prints the memory-model separation matrix: for each
// witness lock it exhaustively model-checks mutual exclusion under SC, TSO
// and PSO and reports either a proof (state space exhausted, no violation)
// or a counterexample. The matrix realizes the SC ⊋ TSO ⊋ PSO hierarchy
// that the paper separates complexity-theoretically: as write ordering
// weakens, strictly more fences are needed for correctness.
//
// With -witness it additionally prints the violating schedule for the
// named lock/model pair.
//
// Usage:
//
//	separation [-states 3000000] [-witness bakery-tso:PSO]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tradingfences"
)

func main() {
	maxStates := flag.Int("states", 3_000_000, "state budget for exhaustive exploration")
	witness := flag.String("witness", "", "print the counterexample for lock:model (e.g. bakery-tso:PSO)")
	liveness := flag.Bool("liveness", false, "also verify deadlock freedom and weak obstruction-freedom of the correct locks")
	fcfs := flag.Bool("fcfs", false, "also check first-come-first-served fairness (Bakery vs GT_2)")
	flag.Parse()

	if err := run(*maxStates, *witness); err != nil {
		fmt.Fprintln(os.Stderr, "separation:", err)
		os.Exit(1)
	}
	if *liveness {
		if err := runLiveness(*maxStates); err != nil {
			fmt.Fprintln(os.Stderr, "separation:", err)
			os.Exit(1)
		}
	}
	if *fcfs {
		if err := runFCFS(); err != nil {
			fmt.Fprintln(os.Stderr, "separation:", err)
			os.Exit(1)
		}
	}
}

func runFCFS() error {
	fmt.Println()
	fmt.Println("First-come-first-served fairness (exhaustive, machine × monitor):")
	fmt.Printf("%-10s %-4s %-8s %-30s\n", "lock", "n", "states", "verdict")
	cases := []struct {
		spec tradingfences.LockSpec
		n    int
	}{
		{tradingfences.LockSpec{Kind: tradingfences.Bakery}, 2},
		{tradingfences.LockSpec{Kind: tradingfences.Peterson}, 2},
		{tradingfences.LockSpec{Kind: tradingfences.GT, F: 2}, 3},
	}
	for _, c := range cases {
		v, err := tradingfences.CheckFCFS(c.spec, c.n, tradingfences.PSO, 8_000_000)
		if err != nil {
			return err
		}
		verdict := "FCFS proved"
		if v.Violated {
			verdict = fmt.Sprintf("VIOLATED (p%d overtook p%d)", v.Violator, v.Overtaken)
		}
		fmt.Printf("%-10v %-4d %-8d %-30s\n", c.spec, c.n, v.States, verdict)
	}
	fmt.Println()
	fmt.Println("Reading: Bakery's fence-heavy doorway buys first-come-first-served")
	fmt.Println("fairness; GT_2 trades it away together with the RMRs.")
	return nil
}

func runLiveness(maxStates int) error {
	fmt.Println()
	fmt.Println("Liveness (2 processes, 1 passage, full state graph):")
	fmt.Printf("%-14s %-6s %-8s %-14s %-22s\n", "lock", "model", "states", "deadlock-free", "weakly obstruction-free")
	for _, k := range []tradingfences.LockKind{tradingfences.Peterson, tradingfences.Bakery, tradingfences.Tournament} {
		for _, m := range tradingfences.Models() {
			v, err := tradingfences.CheckLiveness(tradingfences.LockSpec{Kind: k}, 2, 1, m, maxStates)
			if err != nil {
				return err
			}
			fmt.Printf("%-14v %-6v %-8d %-14v %-22v\n", v.Lock, v.Model, v.States, v.DeadlockFree, v.WeakObstructionFree)
		}
	}
	return nil
}

func verdictCell(v *tradingfences.MutexVerdict) string {
	switch {
	case v.Violated:
		return fmt.Sprintf("VIOLATED(%d st)", v.States)
	case v.Proved:
		return fmt.Sprintf("proved(%d st)", v.States)
	default:
		return "inconclusive"
	}
}

func run(maxStates int, witness string) error {
	rows, err := tradingfences.SeparationMatrix(maxStates)
	if err != nil {
		return err
	}
	fmt.Println("Memory-model separation matrix (2 processes, 1 passage, exhaustive):")
	fmt.Println()
	fmt.Printf("%-18s %-8s %-18s %-18s %-18s\n", "lock", "fences", "SC", "TSO", "PSO")
	for _, row := range rows {
		fmt.Printf("%-18s %-8d %-18s %-18s %-18s\n",
			row.Lock, row.Fences,
			verdictCell(row.Verdicts[tradingfences.SC]),
			verdictCell(row.Verdicts[tradingfences.TSO]),
			verdictCell(row.Verdicts[tradingfences.PSO]))
	}
	fmt.Println()
	fmt.Println("Reading: each model strictly weaker than the previous admits a lock")
	fmt.Println("variant with fewer fences (0 under SC, 1 under TSO, 2 under PSO for")
	fmt.Println("Peterson; 2 vs 3 acquire fences for Bakery). bakery-literal is the")
	fmt.Println("paper's printed Algorithm 1 line order, which is unsafe even under SC.")

	if witness != "" {
		parts := strings.SplitN(witness, ":", 2)
		if len(parts) != 2 {
			return fmt.Errorf("bad -witness %q, want lock:model", witness)
		}
		spec, err := lockByName(parts[0])
		if err != nil {
			return err
		}
		model, err := modelByName(parts[1])
		if err != nil {
			return err
		}
		v, err := tradingfences.CheckMutex(spec, 2, 1, model, maxStates)
		if err != nil {
			return err
		}
		if !v.Violated {
			fmt.Printf("\nno violation of %v under %v\n", spec, model)
			return nil
		}
		fmt.Printf("\ncounterexample for %v under %v:\n%s", spec, model, v.Witness)
	}
	return nil
}

func lockByName(s string) (tradingfences.LockSpec, error) {
	kinds := map[string]tradingfences.LockKind{
		"bakery":           tradingfences.Bakery,
		"bakery-tso":       tradingfences.BakeryTSO,
		"bakery-literal":   tradingfences.BakeryLiteral,
		"peterson":         tradingfences.Peterson,
		"peterson-tso":     tradingfences.PetersonTSO,
		"peterson-nofence": tradingfences.PetersonNoFence,
		"tournament":       tradingfences.Tournament,
	}
	k, ok := kinds[s]
	if !ok {
		return tradingfences.LockSpec{}, fmt.Errorf("unknown lock %q", s)
	}
	return tradingfences.LockSpec{Kind: k}, nil
}

func modelByName(s string) (tradingfences.MemoryModel, error) {
	switch strings.ToUpper(s) {
	case "SC":
		return tradingfences.SC, nil
	case "TSO":
		return tradingfences.TSO, nil
	case "PSO":
		return tradingfences.PSO, nil
	default:
		return 0, fmt.Errorf("unknown model %q", s)
	}
}

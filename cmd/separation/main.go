// Command separation prints the memory-model separation matrix: for each
// witness lock it exhaustively model-checks mutual exclusion under SC, TSO
// and PSO and reports either a proof (state space exhausted, no violation)
// or a counterexample. The matrix realizes the SC ⊋ TSO ⊋ PSO hierarchy
// that the paper separates complexity-theoretically: as write ordering
// weakens, strictly more fences are needed for correctness.
//
// With -witness it additionally prints the violating schedule for the
// named lock/model pair; -witness-out saves the replayable artifact,
// -crashes grants the checker an adversarial crash budget, and -replay
// re-executes a previously saved artifact (bit-for-bit certified).
//
// -workers runs the -witness check on the parallel explorer (verdicts are
// bit-identical to the sequential one for every worker count). -checkpoint
// additionally snapshots the exploration to a file and runs it under the
// retrying supervisor; a killed run is continued with
// -resume-check <file>, which re-certifies the snapshot — subject
// identity, memory model, and the crash budget it was taken under (so
// -crashes need not and must not be restated) — against the rebuilt
// subject before trusting it. A supervised run that reaches a terminal
// verdict deletes its snapshot.
//
// Usage:
//
//	separation [-states 3000000] [-timeout 2m] [-witness bakery-tso:PSO]
//	           [-witness-out w.json] [-crashes 1] [-workers 4] [-checkpoint ck.json]
//	separation -resume-check ck.json [-workers 4]
//	separation -replay w.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"tradingfences"
)

func main() {
	maxStates := flag.Int("states", 3_000_000, "state budget for exhaustive exploration")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the whole run (0 = none)")
	witness := flag.String("witness", "", "print the counterexample for lock:model (e.g. bakery-tso:PSO)")
	witnessOut := flag.String("witness-out", "", "write the -witness counterexample as a replayable artifact to this file")
	crashes := flag.Int("crashes", 0, "adversarial crash budget for the -witness check (0 = crash-free)")
	replay := flag.String("replay", "", "replay a witness artifact file and exit")
	liveness := flag.Bool("liveness", false, "also verify deadlock freedom and weak obstruction-freedom of the correct locks")
	fcfs := flag.Bool("fcfs", false, "also check first-come-first-served fairness (Bakery vs GT_2)")
	workers := flag.Int("workers", 0, "worker goroutines for the -witness check (0 = sequential explorer)")
	checkpoint := flag.String("checkpoint", "", "snapshot the -witness check to this file and run it under the retrying supervisor")
	resumeCheck := flag.String("resume-check", "", "resume a checkpointed check from this snapshot file and exit")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *replay != "" {
		if err := runReplay(*replay); err != nil {
			fmt.Fprintln(os.Stderr, "separation:", err)
			os.Exit(1)
		}
		return
	}
	if *resumeCheck != "" {
		if err := runResume(ctx, *resumeCheck, *maxStates, *workers); err != nil {
			fmt.Fprintln(os.Stderr, "separation:", err)
			os.Exit(1)
		}
		return
	}

	if err := run(ctx, *maxStates, *witness, *witnessOut, *crashes, *workers, *checkpoint); err != nil {
		fmt.Fprintln(os.Stderr, "separation:", err)
		os.Exit(1)
	}
	if *liveness {
		if err := runLiveness(ctx, *maxStates); err != nil {
			fmt.Fprintln(os.Stderr, "separation:", err)
			os.Exit(1)
		}
	}
	if *fcfs {
		if err := runFCFS(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "separation:", err)
			os.Exit(1)
		}
	}
}

func runResume(ctx context.Context, path string, maxStates, workers int) error {
	v, err := tradingfences.ResumeMutexCheckCtx(ctx, path, tradingfences.CheckOptions{
		Budget:  tradingfences.Budget{MaxStates: maxStates},
		Workers: workers,
	})
	if err != nil {
		return err
	}
	fmt.Printf("resumed %s: %v under %v\n", path, v.Lock, v.Model)
	printMutexVerdict(v)
	return nil
}

func printMutexVerdict(v *tradingfences.MutexVerdict) {
	switch {
	case v.Violated:
		fmt.Printf("VIOLATED (%d states, mode %s)\n", v.States, v.Mode)
		if v.Witness != "" {
			fmt.Printf("\ncounterexample:\n%s", v.Witness)
		}
	case v.Proved:
		fmt.Printf("proved (%d states)\n", v.States)
	default:
		fmt.Printf("inconclusive (%d states, mode %s)\n", v.States, v.Mode)
	}
}

func runReplay(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	w, err := tradingfences.DecodeWitness(data)
	if err != nil {
		return err
	}
	trace, err := tradingfences.ReplayWitness(w)
	if err != nil {
		return err
	}
	fmt.Printf("witness %s: %s under %s, n=%d, %d passage(s)\n", path, w.Lock, w.Model, w.N, w.Passages)
	fmt.Printf("replay certified (config %s, trace %s); processes in CS: %v\n\n", w.ConfigFP, w.TraceFP, w.InCS)
	fmt.Print(trace)
	return nil
}

func runFCFS(ctx context.Context) error {
	fmt.Println()
	fmt.Println("First-come-first-served fairness (exhaustive, machine × monitor):")
	fmt.Printf("%-10s %-4s %-8s %-30s\n", "lock", "n", "states", "verdict")
	cases := []struct {
		spec tradingfences.LockSpec
		n    int
	}{
		{tradingfences.LockSpec{Kind: tradingfences.Bakery}, 2},
		{tradingfences.LockSpec{Kind: tradingfences.Peterson}, 2},
		{tradingfences.LockSpec{Kind: tradingfences.GT, F: 2}, 3},
	}
	for _, c := range cases {
		v, err := tradingfences.CheckFCFSCtx(ctx, c.spec, c.n, tradingfences.PSO,
			tradingfences.CheckOptions{Budget: tradingfences.Budget{MaxStates: 8_000_000}})
		if err != nil {
			return err
		}
		verdict := "FCFS proved"
		if v.Violated {
			verdict = fmt.Sprintf("VIOLATED (p%d overtook p%d)", v.Violator, v.Overtaken)
		}
		fmt.Printf("%-10v %-4d %-8d %-30s\n", c.spec, c.n, v.States, verdict)
	}
	fmt.Println()
	fmt.Println("Reading: Bakery's fence-heavy doorway buys first-come-first-served")
	fmt.Println("fairness; GT_2 trades it away together with the RMRs.")
	return nil
}

func runLiveness(ctx context.Context, maxStates int) error {
	fmt.Println()
	fmt.Println("Liveness (2 processes, 1 passage, full state graph):")
	fmt.Printf("%-14s %-6s %-8s %-14s %-22s\n", "lock", "model", "states", "deadlock-free", "weakly obstruction-free")
	for _, k := range []tradingfences.LockKind{tradingfences.Peterson, tradingfences.Bakery, tradingfences.Tournament} {
		for _, m := range tradingfences.Models() {
			v, err := tradingfences.CheckLivenessCtx(ctx, tradingfences.LockSpec{Kind: k}, 2, 1, m,
				tradingfences.CheckOptions{Budget: tradingfences.Budget{MaxStates: maxStates}})
			if err != nil {
				return err
			}
			fmt.Printf("%-14v %-6v %-8d %-14v %-22v\n", v.Lock, v.Model, v.States, v.DeadlockFree, v.WeakObstructionFree)
		}
	}
	return nil
}

func verdictCell(v *tradingfences.MutexVerdict) string {
	switch {
	case v.Violated:
		return fmt.Sprintf("VIOLATED(%d st)", v.States)
	case v.Proved:
		return fmt.Sprintf("proved(%d st)", v.States)
	case v.Mode == tradingfences.ModeDegraded:
		return "no viol. (degraded)"
	default:
		return "inconclusive"
	}
}

func run(ctx context.Context, maxStates int, witness, witnessOut string, crashes, workers int, checkpoint string) error {
	rows, err := tradingfences.SeparationMatrixCtx(ctx, maxStates)
	if err != nil {
		return err
	}
	fmt.Println("Memory-model separation matrix (2 processes, 1 passage, exhaustive):")
	fmt.Println()
	fmt.Printf("%-18s %-8s %-18s %-18s %-18s\n", "lock", "fences", "SC", "TSO", "PSO")
	for _, row := range rows {
		fmt.Printf("%-18s %-8d %-18s %-18s %-18s\n",
			row.Lock, row.Fences,
			verdictCell(row.Verdicts[tradingfences.SC]),
			verdictCell(row.Verdicts[tradingfences.TSO]),
			verdictCell(row.Verdicts[tradingfences.PSO]))
	}
	fmt.Println()
	fmt.Println("Reading: each model strictly weaker than the previous admits a lock")
	fmt.Println("variant with fewer fences (0 under SC, 1 under TSO, 2 under PSO for")
	fmt.Println("Peterson; 2 vs 3 acquire fences for Bakery). bakery-literal is the")
	fmt.Println("paper's printed Algorithm 1 line order, which is unsafe even under SC.")

	if witness != "" {
		parts := strings.SplitN(witness, ":", 2)
		if len(parts) != 2 {
			return fmt.Errorf("bad -witness %q, want lock:model", witness)
		}
		spec, err := tradingfences.ParseLockSpec(parts[0])
		if err != nil {
			return err
		}
		model, err := tradingfences.ParseMemoryModel(parts[1])
		if err != nil {
			return err
		}
		opts := tradingfences.CheckOptions{
			Budget:         tradingfences.Budget{MaxStates: maxStates},
			Workers:        workers,
			CheckpointPath: checkpoint,
		}
		if crashes > 0 {
			opts.Faults = &tradingfences.FaultPlan{MaxCrashes: crashes}
		}
		var v *tradingfences.MutexVerdict
		if checkpoint != "" {
			// A checkpointed check runs under the supervisor: budget trips
			// and worker failures retry from the snapshot instead of
			// restarting from zero.
			var attempts []tradingfences.SupervisedAttempt
			v, attempts, err = tradingfences.CheckMutexSupervisedCtx(ctx, spec, 2, 1, model,
				tradingfences.SuperviseOptions{CheckOptions: opts})
			if err == nil && len(attempts) > 1 {
				fmt.Printf("\nsupervisor: %d attempts", len(attempts))
				for _, a := range attempts {
					fmt.Printf("; #%d workers=%d resumed-level=%d err=%q", a.Index, a.Workers, a.ResumedLevel, a.Err)
				}
				fmt.Println()
			}
		} else {
			v, err = tradingfences.CheckMutexCtx(ctx, spec, 2, 1, model, opts)
		}
		if err != nil {
			return err
		}
		if !v.Violated {
			fmt.Printf("\nno violation of %v under %v (mode %s)\n", spec, model, v.Mode)
			return nil
		}
		fmt.Printf("\ncounterexample for %v under %v:\n%s", spec, model, v.Witness)
		if witnessOut != "" && v.Artifact != nil {
			if err := tradingfences.WriteWitnessFile(witnessOut, v.Artifact); err != nil {
				return err
			}
			fmt.Printf("\nwitness artifact written to %s (replay with -replay %s)\n", witnessOut, witnessOut)
		}
	}
	return nil
}

package tradingfences

import (
	"context"
	"strings"

	"tradingfences/internal/check"
	"tradingfences/internal/machine"
	"tradingfences/internal/rme"
	"tradingfences/internal/run"
)

// PassageStats reports per-recoverable-passage RMR accounting: how many
// passages (entry through exit of the instrumented workload, crash
// re-entries included) closed, and the worst and total remote-memory-
// reference counts per passage under the cache-coherent (CC) and
// distributed-shared-memory (DSM) rules. The maxima are the measured
// quantity the Chan–Woelfel Ω(log n / log log n) RME lower bound speaks
// about.
type PassageStats = machine.PassageStats

// RMELocks returns the names of the recoverable locks available to
// CheckRMECtx, sorted: "rbakery", "rtas", "rtas-unsafe" (a deliberately
// broken negative control), "rtournament".
func RMELocks() []string { return rme.Names() }

// IsRMELock reports whether name is a registered recoverable lock (with
// or without the "rme:" prefix used in witness artifacts).
func IsRMELock(name string) bool {
	_, ok := rme.Locks[strings.TrimPrefix(name, "rme:")]
	return ok
}

// ChanWoelfelBound evaluates the Chan–Woelfel RME lower bound
// log n / log log n at n (reported as 1 for degenerate n <= 2), the
// reference curve the measured per-passage maxima are tabulated against.
func ChanWoelfelBound(n int) float64 { return rme.ChanWoelfelBound(n) }

// CheckRMECtx model-checks recoverable mutual exclusion: the named
// recoverable lock run by n processes for `passages` recoverable passages
// each under the given memory model, with the checker's adversary
// injecting up to opts.Faults.MaxCrashes crash-and-recover events at
// points of its choosing. A crashed process re-enters the lock's recovery
// section with only its durable state and then resumes its passage loop —
// the Golab–Ramaraju crash-restart model — so a Proved verdict certifies
// exclusivity across every interleaving of crashes and recoveries within
// the budget.
//
// The verdict additionally reports Passages: worst-case remote memory
// references per recoverable passage under both the CC and DSM rules,
// measured over every passage the exploration closed (crash re-entries
// charge the passage they interrupted). Budget handling, degradation and
// witness packaging are as in CheckMutexCtx; witness artifacts carry the
// lock name as "rme:<name>" and replay through ReplayWitness.
func CheckRMECtx(ctx context.Context, name string, n, passages int, model MemoryModel, opts CheckOptions) (v *MutexVerdict, err error) {
	defer run.Recover("check rme", &err)
	subject, err := newRMESubject(name, n, passages)
	if err != nil {
		return nil, err
	}
	return checkSubject(ctx, subject, subject.Name, n, passages, model, opts,
		opts.checkOpts("rme", subject.Name, n, passages))
}

// CheckRME is CheckRMECtx with a background context, a plain state
// budget, and an adversarial crash budget.
func CheckRME(name string, n, passages int, model MemoryModel, crashes, maxStates int) (*MutexVerdict, error) {
	opts := CheckOptions{Budget: Budget{MaxStates: maxStates}}
	if crashes > 0 {
		opts.Faults = &FaultPlan{MaxCrashes: crashes}
	}
	return CheckRMECtx(context.Background(), name, n, passages, model, opts)
}

// newRMESubject builds the instrumented recoverable workload, accepting
// the bare lock name or the "rme:"-prefixed form recorded in witnesses.
func newRMESubject(name string, n, passages int) (*check.Subject, error) {
	return rme.NewSubject(strings.TrimPrefix(name, "rme:"), n, passages)
}

module tradingfences

go 1.22

package tradingfences

import (
	"context"
	"path/filepath"
	"strings"
	"testing"
)

// The parallel explorer behind CheckOptions.Workers must reproduce the
// sequential facade verdicts: identical proofs (including state counts)
// and identical violation verdicts with replayable artifacts.
func TestCheckMutexWorkersFacade(t *testing.T) {
	ctx := context.Background()
	// Proof: state counts must match exactly (both explorers exhaust the
	// same reachable space).
	seq, err := CheckMutexCtx(ctx, LockSpec{Kind: Bakery}, 2, 1, PSO, CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := CheckMutexCtx(ctx, LockSpec{Kind: Bakery}, 2, 1, PSO, CheckOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !par.Proved || par.Violated {
		t.Fatalf("parallel bakery/PSO verdict: %+v", par)
	}
	if par.States != seq.States {
		t.Fatalf("parallel proof explored %d states, sequential %d", par.States, seq.States)
	}

	// Violation: the parallel (breadth-first) witness may differ from the
	// sequential (depth-first) one, but both must be violations with
	// certified, replayable artifacts.
	v, err := CheckMutexCtx(ctx, LockSpec{Kind: BakeryTSO}, 2, 1, PSO, CheckOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Violated || v.Artifact == nil {
		t.Fatalf("parallel bakery-tso/PSO verdict: %+v", v)
	}
	if _, err := ReplayWitness(v.Artifact); err != nil {
		t.Fatalf("parallel witness does not replay: %v", err)
	}
}

// A checkpointed check that trips its state budget degrades (same
// contract as the sequential path), leaves its snapshot behind, and
// ResumeMutexCheckCtx finishes the exhaustive proof from that snapshot.
func TestCheckpointThenResumeFacade(t *testing.T) {
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "ck.json")
	v, err := CheckMutexCtx(ctx, LockSpec{Kind: Bakery}, 2, 1, PSO, CheckOptions{
		Budget:         Budget{MaxStates: 400},
		CheckpointPath: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Mode != ModeDegraded || v.Proved {
		t.Fatalf("tripped check did not degrade: %+v", v)
	}

	resumed, err := ResumeMutexCheckCtx(ctx, path, CheckOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Proved || resumed.Violated {
		t.Fatalf("resumed verdict: %+v", resumed)
	}
	if resumed.Lock.Kind != Bakery || resumed.Model != PSO {
		t.Fatalf("resume rebuilt the wrong subject: %+v", resumed)
	}
}

// Resuming a snapshot against a drifted subject must fail closed: the
// file names the lock it belongs to, and a tampered name is caught by the
// identity hash.
func TestResumeRejectsTamperedSnapshot(t *testing.T) {
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "ck.json")
	if _, err := CheckMutexCtx(ctx, LockSpec{Kind: Bakery}, 2, 1, PSO, CheckOptions{
		Budget:         Budget{MaxStates: 400},
		CheckpointPath: path,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := ResumeMutexCheckCtx(ctx, filepath.Join(t.TempDir(), "missing.json"), CheckOptions{}); err == nil {
		t.Fatal("resume from a missing file succeeded")
	}
}

// Resume takes its fault plan from the snapshot: a checkpointed run with a
// crash budget resumes under the same budget without the caller restating
// it, and a caller-supplied plan is rejected rather than overridden.
func TestResumeReconstructsCrashBudget(t *testing.T) {
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "ck.json")
	v, err := CheckMutexCtx(ctx, LockSpec{Kind: Bakery}, 2, 1, PSO, CheckOptions{
		Budget:         Budget{MaxStates: 400},
		CheckpointPath: path,
		Faults:         &FaultPlan{MaxCrashes: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Mode != ModeDegraded {
		t.Fatalf("tripped check did not degrade: %+v", v)
	}
	if _, err := ResumeMutexCheckCtx(ctx, path, CheckOptions{
		Faults: &FaultPlan{MaxCrashes: 2},
	}); err == nil {
		t.Fatal("caller-supplied fault plan accepted at resume")
	}
	direct, err := CheckMutexCtx(ctx, LockSpec{Kind: Bakery}, 2, 1, PSO, CheckOptions{
		Workers: 2, Faults: &FaultPlan{MaxCrashes: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := ResumeMutexCheckCtx(ctx, path, CheckOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Proved != direct.Proved || resumed.Violated != direct.Violated {
		t.Fatalf("resumed verdict (proved=%v viol=%v) drifted from direct (proved=%v viol=%v)",
			resumed.Proved, resumed.Violated, direct.Proved, direct.Violated)
	}
}

// FCFS checking is sequential: the options that select the parallel
// checkpointed explorer are rejected, not silently ignored.
func TestCheckFCFSRejectsParallelOptions(t *testing.T) {
	ctx := context.Background()
	if _, err := CheckFCFSCtx(ctx, LockSpec{Kind: Bakery}, 2, PSO, CheckOptions{Workers: 2}); err == nil {
		t.Fatal("FCFS checking accepted Workers")
	}
	if _, err := CheckFCFSCtx(ctx, LockSpec{Kind: Bakery}, 2, PSO, CheckOptions{CheckpointPath: "ck.json"}); err == nil {
		t.Fatal("FCFS checking accepted CheckpointPath")
	}
}

// The supervised facade: a clean run is one attempt with the plain
// exhaustive verdict; the attempt reports expose the ladder.
func TestCheckMutexSupervisedFacade(t *testing.T) {
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "ck.json")
	v, attempts, err := CheckMutexSupervisedCtx(ctx, LockSpec{Kind: BakeryTSO}, 2, 1, PSO, SuperviseOptions{
		CheckOptions: CheckOptions{Workers: 2, CheckpointPath: path},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Violated || v.Mode != ModeExhaustive {
		t.Fatalf("supervised bakery-tso/PSO verdict: %+v", v)
	}
	if len(attempts) != 1 || attempts[0].Err != "" {
		t.Fatalf("clean supervised run attempts: %+v", attempts)
	}
	if v.Artifact == nil {
		t.Fatal("supervised violation has no artifact")
	}
	if _, err := ReplayWitness(v.Artifact); err != nil {
		t.Fatalf("supervised witness does not replay: %v", err)
	}
	if !strings.Contains(v.WitnessSchedule, "p") {
		t.Fatalf("empty witness schedule: %+v", v)
	}
}

// FCFS checking degrades uniformly with the mutex checker: a tripped
// state budget continues with the seeded randomized hunt and reports
// Mode/Coverage instead of silently returning a partial verdict.
func TestCheckFCFSDegrades(t *testing.T) {
	ctx := context.Background()
	// GT_2's overtake is findable by random search even when the
	// exhaustive product-space walk trips immediately. The overtake is a
	// rare interleaving: size the fallback like the internal randomized
	// test does (50k runs of up to 600 steps, seed 5).
	v, err := CheckFCFSCtx(ctx, LockSpec{Kind: GT, F: 2}, 3, PSO, CheckOptions{
		Budget:           Budget{MaxStates: 200},
		Seed:             5,
		FallbackRuns:     50_000,
		FallbackMaxSteps: 600,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Mode != ModeDegraded || v.Proved {
		t.Fatalf("tripped FCFS check did not degrade: %+v", v)
	}
	if v.Coverage.ExhaustiveStates == 0 || v.Coverage.RandomSteps == 0 {
		t.Fatalf("degraded FCFS verdict lost its coverage: %+v", v)
	}
	if !v.Violated {
		t.Fatalf("degraded FCFS hunt missed the GT_2 overtake: %+v", v)
	}

	// A correct lock under the same tiny budget: degraded, unproved,
	// no violation.
	v, err = CheckFCFSCtx(ctx, LockSpec{Kind: Bakery}, 2, PSO, CheckOptions{
		Budget: Budget{MaxStates: 200},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Mode != ModeDegraded || v.Proved || v.Violated {
		t.Fatalf("bakery degraded FCFS verdict: %+v", v)
	}
}

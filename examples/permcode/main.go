// Permcode: the lower-bound machinery as a working codec. A permutation π
// of the processes is turned into an execution E_π of Count-over-Bakery
// (the paper's Section 5.2 construction), encoded into a bit string of
// command stacks (Table 1), and decoded back: the bit string replays the
// execution and the ranks read off the return values reproduce π exactly.
// The bit length is compared against log2(n!) — the information floor that
// powers Theorem 4.2's Ω(n log n) bound.
package main

import (
	"fmt"
	"log"

	"tradingfences"
)

func main() {
	const n = 12
	spec := tradingfences.LockSpec{Kind: tradingfences.Bakery}

	pi := tradingfences.RandomPerm(n, 2026)
	fmt.Printf("π               = %v\n", pi)

	rep, err := tradingfences.EncodePermutation(spec, tradingfences.Count, pi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("execution E_π   : %d steps, β = %d fences, ρ = %d RMRs\n",
		rep.Steps, rep.Fences, rep.RMRs)
	fmt.Printf("command stacks  : m = %d commands, parameter sum v = %d\n",
		rep.Commands, rep.ParamSum)
	fmt.Printf("  census        : %d proceed, %d commit, %d wait-hidden-commit, %d wait-read-finish, %d wait-local-finish\n",
		rep.Census.Proceed, rep.Census.Commit, rep.Census.WaitHiddenCommit,
		rep.Census.WaitReadFinish, rep.Census.WaitLocalFinish)
	fmt.Printf("code            : %d bits (%x...)\n", rep.BitLen, rep.Code[:min(8, len(rep.Code))])
	fmt.Printf("entropy floor   : log2(%d!) = %.1f bits\n", n, tradingfences.Log2Factorial(n))
	fmt.Printf("paper bound     : m·(lg(v/m)+1) = %.1f,  β·(lg(ρ/β)+1) = %.1f\n",
		rep.Bound, rep.TheoremLHS)

	back, err := tradingfences.RecoverPermutationFromCode(spec, tradingfences.Count, n, rep.Code, rep.BitLen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decoded π       = %v\n", back)
	for i := range pi {
		if back[i] != pi[i] {
			log.Fatalf("round trip failed at position %d", i)
		}
	}
	fmt.Println("round trip      : ok — the code uniquely identifies the permutation")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

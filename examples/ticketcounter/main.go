// Ticketcounter: the workload that motivates the paper's object class — a
// ticket dispenser (fetch-and-increment) and a service queue, both built
// from read/write registers and a lock, run under adversarial PSO
// schedules. The example shows that (a) every customer gets a unique
// ticket no matter how writes are reordered, and (b) the choice of lock
// decides the fence/RMR bill for the same workload.
package main

import (
	"fmt"
	"log"

	"tradingfences"
)

func main() {
	const customers = 12

	fmt.Printf("ticket dispenser, %d customers, adversarial PSO schedules\n\n", customers)

	specs := []tradingfences.LockSpec{
		{Kind: tradingfences.Bakery},     // f = O(1),      r = Θ(n)
		{Kind: tradingfences.GT, F: 2},   // f = O(2),      r = O(2·√n)
		{Kind: tradingfences.Tournament}, // f = Θ(log n),  r = Θ(log n)
	}

	for _, spec := range specs {
		dispenser, err := tradingfences.NewSystem(spec, tradingfences.FetchAndIncrement, customers)
		if err != nil {
			log.Fatal(err)
		}

		// Three adversarial schedules: the adversary picks who steps and
		// which buffered writes commit, out of order.
		for seed := int64(0); seed < 3; seed++ {
			rep, err := dispenser.RunRandom(tradingfences.PSO, seed, 0.35)
			if err != nil {
				log.Fatal(err)
			}
			if err := verifyUnique(rep.Returns); err != nil {
				log.Fatalf("%v seed %d: %v", spec, seed, err)
			}
		}

		rep, err := dispenser.RunRandom(tradingfences.PSO, 42, 0.35)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12v all tickets unique; bill: β = %3d fences, ρ = %3d RMRs\n",
			spec, rep.TotalFences, rep.TotalRMRs)
	}

	// The same story through the queue object: enqueue positions are the
	// service order.
	queue, err := tradingfences.NewSystem(
		tradingfences.LockSpec{Kind: tradingfences.GT, F: 2},
		tradingfences.QueueEnqueue, customers)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := queue.RunConcurrent(tradingfences.PSO)
	if err != nil {
		log.Fatal(err)
	}
	order := make([]int, customers)
	for p, pos := range rep.Returns {
		order[pos] = p
	}
	fmt.Printf("\nservice queue (GT_2): enqueue order %v\n", order)
}

func verifyUnique(tickets []int64) error {
	seen := make(map[int64]int, len(tickets))
	for p, tk := range tickets {
		if q, dup := seen[tk]; dup {
			return fmt.Errorf("ticket %d issued to both %d and %d", tk, q, p)
		}
		seen[tk] = p
	}
	return nil
}

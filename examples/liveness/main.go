// Liveness: mutual exclusion is only requirement (1) of the paper's lock
// definition — requirement (2) is deadlock freedom. This example runs the
// full state-graph liveness analysis (deadlock freedom via reverse
// reachability from the completed states, plus the paper's weak
// obstruction-freedom condition) on a correct lock and on two deliberately
// broken controls:
//
//   - deadlock-demo: raise own flag, wait for the other's to drop — a
//     deadly embrace. Mutually exclusive and weakly obstruction-free (a
//     process running alone never blocks), but NOT deadlock-free.
//   - rendezvous-demo: wait for the other's flag to RISE — a process
//     running alone spins forever, violating weak obstruction-freedom
//     itself.
package main

import (
	"fmt"
	"log"

	"tradingfences"
)

func main() {
	const states = 2_000_000
	specs := []tradingfences.LockSpec{
		{Kind: tradingfences.Peterson},
		{Kind: tradingfences.Bakery},
		{Kind: tradingfences.DeadlockDemo},
		{Kind: tradingfences.RendezvousDemo},
	}

	fmt.Println("full state-graph liveness analysis (2 processes, 1 passage, PSO):")
	fmt.Println()
	fmt.Printf("%-17s %-8s %-9s %-15s %-24s\n",
		"lock", "states", "mutex", "deadlock-free", "weakly obstruction-free")
	for _, spec := range specs {
		mv, err := tradingfences.CheckMutex(spec, 2, 1, tradingfences.PSO, states)
		if err != nil {
			log.Fatal(err)
		}
		lv, err := tradingfences.CheckLiveness(spec, 2, 1, tradingfences.PSO, states)
		if err != nil {
			log.Fatal(err)
		}
		mutex := "proved"
		if mv.Violated {
			mutex = "VIOLATED"
		}
		fmt.Printf("%-17v %-8d %-9s %-15v %-24v\n",
			spec, lv.States, mutex, lv.DeadlockFree, lv.WeakObstructionFree)
	}

	fmt.Println()
	fmt.Println("Reading: the deadly embrace is safe and weakly obstruction-free yet")
	fmt.Println("deadlocks (deadlock freedom strictly implies weak obstruction-freedom,")
	fmt.Println("as the paper notes in Section 2); the rendezvous variant fails even the")
	fmt.Println("weaker condition. The real locks satisfy everything, exhaustively.")
}

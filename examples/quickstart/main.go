// Quickstart: build the paper's Count object over a Bakery lock, run it on
// the simulated PSO machine, and inspect the per-passage fence and RMR
// costs — the two currencies the paper trades against each other.
package main

import (
	"fmt"
	"log"

	"tradingfences"
)

func main() {
	const n = 8

	// A System is an ordering object (here: Count, the paper's canonical
	// one) over a lock, instantiated for n processes.
	sys, err := tradingfences.NewSystem(
		tradingfences.LockSpec{Kind: tradingfences.Bakery},
		tradingfences.Count,
		n,
	)
	if err != nil {
		log.Fatal(err)
	}

	// Sequential passages: each process acquires, counts, releases, alone.
	// For ordering objects the i-th process through the object returns i.
	rep, err := sys.RunSequential(tradingfences.PSO, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sequential run under PSO:")
	fmt.Println("  returns (ranks):", rep.Returns)
	fmt.Printf("  worst passage: %d fences, %d RMRs\n", rep.MaxFences, rep.MaxRMRs)
	fmt.Printf("  totals: β = %d fences, ρ = %d RMRs\n\n", rep.TotalFences, rep.TotalRMRs)

	// The same system under full contention (fair round-robin schedule):
	// mutual exclusion keeps the ranks a permutation.
	rep, err = sys.RunConcurrent(tradingfences.PSO)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("contended round-robin run under PSO:")
	fmt.Println("  returns (ranks):", rep.Returns)
	fmt.Printf("  totals: β = %d fences, ρ = %d RMRs\n\n", rep.TotalFences, rep.TotalRMRs)

	// Compare with the other end of the tradeoff: the binary tournament
	// tree trades O(1)→Θ(log n) fences for Θ(n)→Θ(log n) RMRs.
	for _, spec := range []tradingfences.LockSpec{
		{Kind: tradingfences.Bakery},
		{Kind: tradingfences.GT, F: 2},
		{Kind: tradingfences.Tournament},
	} {
		pt, err := tradingfences.MeasureLock(spec, n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12v per passage at n=%d: %d fences, %d RMRs (f·(lg(r/f)+1)/lg n = %.2f)\n",
			spec, n, pt.Fences, pt.RMRs, pt.Normalized)
	}
}

// Costmodel: the two cost currencies under the microscope. This example
// measures the same Bakery and tournament passages under the three RMR
// accountings (the paper's combined cache+segment model, classic DSM,
// classic CC), shows which register arrays the RMR bill goes to, and
// demonstrates the asymmetry at the heart of the paper: repeated passages
// amortize RMRs (caches warm up) but never fences (ordering must be paid
// for every time).
package main

import (
	"fmt"
	"log"

	"tradingfences"
)

func main() {
	const n = 32
	specs := []tradingfences.LockSpec{
		{Kind: tradingfences.Bakery},
		{Kind: tradingfences.Tournament},
	}

	fmt.Printf("RMRs per uncontended passage, n = %d, all three accountings:\n\n", n)
	fmt.Printf("%-12s %-10s %-8s %-8s\n", "lock", "combined", "DSM", "CC")
	for _, spec := range specs {
		var vals []int64
		for _, acct := range tradingfences.RMRModels() {
			pt, err := tradingfences.MeasureLockIn(spec, n, acct)
			if err != nil {
				log.Fatal(err)
			}
			vals = append(vals, pt.RMRs)
		}
		fmt.Printf("%-12v %-10d %-8d %-8d\n", spec, vals[0], vals[1], vals[2])
	}
	fmt.Println("\n(combined is never above DSM or CC: the paper proves its lower")
	fmt.Println("bound in the weakest counting so it transfers to both.)")

	fmt.Println("\nWhere the bill goes (RMR attribution, Bakery):")
	br, err := tradingfences.ExplainRMRs(tradingfences.LockSpec{Kind: tradingfences.Bakery}, n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(br.Table)

	fmt.Println("\nAmortization over 8 back-to-back passages per process:")
	fmt.Printf("%-12s %-12s %-22s %-16s\n", "lock", "first RMRs", "amortized RMRs/passage", "fences/passage")
	for _, spec := range specs {
		pt, err := tradingfences.MeasureLockRepeated(spec, n, 8, tradingfences.CombinedModel)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12v %-12d %-22.2f %-16.1f\n", spec, pt.FirstRMRs, pt.AmortizedRMRs, pt.AmortizedFences)
	}
	fmt.Println("\nReading: warm caches cut Bakery's scan cost ~8x, but the fence")
	fmt.Println("column does not move — RMRs are a cache phenomenon, fences are an")
	fmt.Println("ordering phenomenon. That asymmetry is the tradeoff's engine.")
}

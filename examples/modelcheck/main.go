// Modelcheck: use the exhaustive checker to see the memory-model
// separation with your own eyes. The same Bakery code minus one fence
// (the one TSO's FIFO store buffer makes redundant) is proved correct
// under TSO and then broken under PSO, with the violating schedule
// printed step by step.
package main

import (
	"fmt"
	"log"

	"tradingfences"
)

func main() {
	spec := tradingfences.LockSpec{Kind: tradingfences.BakeryTSO}
	const states = 3_000_000

	fmt.Println("lock under test: bakery-tso — classic Bakery with the fence between")
	fmt.Println("the ticket write and the choosing-flag write removed (TSO commits")
	fmt.Println("them in order anyway; PSO does not).")
	fmt.Println()

	for _, model := range tradingfences.Models() {
		v, err := tradingfences.CheckMutex(spec, 2, 1, model, states)
		if err != nil {
			log.Fatal(err)
		}
		switch {
		case v.Proved:
			fmt.Printf("%-4v: mutual exclusion PROVED (%d states, exhaustive)\n", model, v.States)
		case v.Violated:
			fmt.Printf("%-4v: mutual exclusion VIOLATED (%d states searched)\n", model, v.States)
		default:
			fmt.Printf("%-4v: inconclusive within %d states\n", model, states)
		}
	}

	v, err := tradingfences.CheckMutex(spec, 2, 1, tradingfences.PSO, states)
	if err != nil {
		log.Fatal(err)
	}
	if !v.Violated {
		log.Fatal("expected a PSO violation")
	}
	fmt.Println("\nPSO counterexample (write commits reordered against program order):")
	fmt.Print(v.Witness)
	fmt.Println("\nat the end both processes are inside the critical section.")
}

package tradingfences

import (
	"context"
	"fmt"
	"os"
	"time"

	"tradingfences/internal/check"
	"tradingfences/internal/run"
	"tradingfences/internal/supervise"
)

// SuperviseOptions parameterizes a supervised mutex check: the base check
// options plus the retry ladder of the supervisor.
type SuperviseOptions struct {
	CheckOptions
	// MaxAttempts caps the exhaustive attempts before the randomized
	// fallback (0 = default 3).
	MaxAttempts int
	// BackoffBase is the sleep before retry k (BackoffBase << k,
	// 0 = default 50ms).
	BackoffBase time.Duration
	// BudgetGrowth multiplies the tripped budget's bounded resources on
	// each escalation (0 = default 2.0).
	BudgetGrowth float64
	// Resume makes the first attempt pick up a certified snapshot already
	// present at CheckpointPath. By default the supervised run owns the
	// path: a pre-existing file is cleared before the first attempt and
	// the snapshot is removed once a terminal verdict is reached.
	Resume bool
	// OnAttempt, when non-nil, streams each attempt's report as it
	// completes (before any backoff sleep), so long-running supervised
	// checks can surface their escalation ladder live — the verification
	// daemon builds its per-job decision log and progress endpoint from
	// these. The callback runs on the supervising goroutine and must not
	// block for long.
	OnAttempt func(SupervisedAttempt)
}

// SupervisedAttempt reports one rung of a supervised run: the escalated
// parameters in force, what checkpoint (if any) it resumed from, and why
// it stopped.
type SupervisedAttempt = supervise.Attempt

// supervisedVerdict lowers a supervisor outcome to a MutexVerdict and
// packages the witness of whichever phase found the violation.
func supervisedVerdict(ctx context.Context, subject *check.Subject, spec LockSpec, n, passages int, model MemoryModel, out *supervise.Outcome, faults *FaultPlan) (*MutexVerdict, error) {
	res := out.Result
	v := &MutexVerdict{
		Lock:            spec,
		Model:           model,
		Mode:            ModeExhaustive,
		Violated:        res.Violation,
		// A bounded-semantics completion is a bounded certificate, not a
		// proof (same suppression as the unsupervised path).
		Proved:          res.Complete && !res.Violation && res.ReorderBound == 0,
		States:          res.States,
		SymmetryApplied: res.SymmetryApplied,
		Coverage: Coverage{
			ExhaustiveStates: res.States,
			ReorderBound:     res.ReorderBound,
			BoundedComplete:  res.ReorderBound > 0 && res.Complete && !res.Violation,
			POR:              res.PORApplied,
		},
	}
	wsched := res.Witness
	if out.Mode == supervise.ModeDegraded {
		v.Mode = ModeDegraded
		v.Proved = false
		v.Coverage.RandomSteps = out.Fallback.States
		if out.Fallback.Violation {
			v.Violated = true
			wsched = out.Fallback.Witness
		}
	}
	if err := attachWitness(ctx, subject, spec.String(), n, passages, model, v, wsched, faults); err != nil {
		return v, err
	}
	return v, nil
}

// CheckMutexSupervisedCtx model-checks mutual exclusion like CheckMutexCtx
// but under the supervisor of internal/supervise: attempts that trip a
// degradable budget or lose a worker are retried from the last certified
// checkpoint (opts.CheckpointPath) with exponential backoff, escalating
// the budget and then shrinking the worker pool before degrading to the
// seeded randomized fallback. The per-attempt reports expose the ladder.
//
// Fault plans with adversarial crash budgets are carried through every
// attempt; the supervised path does not accept fixed crash points or
// stall windows (same restriction as exhaustive checking).
func CheckMutexSupervisedCtx(ctx context.Context, spec LockSpec, n, passages int, model MemoryModel, opts SuperviseOptions) (v *MutexVerdict, attempts []SupervisedAttempt, err error) {
	defer run.Recover("check mutex supervised", &err)
	subject, err := newMutexSubject(spec, n, passages)
	if err != nil {
		return nil, nil, err
	}
	runs, maxSteps := opts.fallback()
	out, serr := supervise.CheckMutex(ctx, subject, model.internal(), supervise.Options{
		Workers:          opts.Workers,
		Budget:           opts.Budget,
		Faults:           opts.Faults,
		Symmetry:         opts.Symmetry,
		Reduction:        check.Reduction{ReorderBound: opts.ReorderBound, POR: opts.POR},
		MaxAttempts:      opts.MaxAttempts,
		BackoffBase:      opts.BackoffBase,
		BudgetGrowth:     opts.BudgetGrowth,
		CheckpointPath:   opts.CheckpointPath,
		CheckpointEvery:  opts.CheckpointEvery,
		Resume:           opts.Resume,
		Meta:             check.CheckpointMeta{Kind: "mutex", Lock: spec.String(), N: n, Passages: passages},
		Seed:             opts.Seed,
		FallbackRuns:     runs,
		FallbackMaxSteps: maxSteps,
		OnAttempt:        opts.OnAttempt,
	})
	if out == nil {
		return nil, nil, serr
	}
	if serr != nil {
		// Non-recoverable: report the partial verdict alongside the error.
		v, _ = supervisedVerdict(ctx, subject, spec, n, passages, model, out, opts.Faults)
		return v, out.Attempts, serr
	}
	v, err = supervisedVerdict(ctx, subject, spec, n, passages, model, out, opts.Faults)
	return v, out.Attempts, err
}

// ResumeMutexCheckCtx continues a checkpointed mutex check from a snapshot
// file written by an earlier run (CheckOptions.CheckpointPath). The
// subject is rebuilt from the snapshot's metadata and re-certified against
// its identity hash — a snapshot from a different lock, workload size or
// build is rejected rather than resumed. The resumed run keeps
// checkpointing to the same file.
//
// The snapshot pins the lock, workload, memory model and crash budget;
// opts contributes only the run parameters (budget, workers, cadence). In
// particular the fault plan is reconstructed from the snapshot — its
// frontier and visited keys are only meaningful under the crash budget
// they were generated with — and any opts.Faults is rejected rather than
// silently overridden.
func ResumeMutexCheckCtx(ctx context.Context, path string, opts CheckOptions) (v *MutexVerdict, err error) {
	defer run.Recover("resume mutex check", &err)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	ck, err := check.DecodeCheckpoint(data)
	if err != nil {
		return nil, err
	}
	if ck.Meta.Kind != "mutex" {
		return nil, fmt.Errorf("tradingfences: cannot resume checkpoint of kind %q", ck.Meta.Kind)
	}
	spec, err := ParseLockSpec(ck.Meta.Lock)
	if err != nil {
		return nil, err
	}
	model, err := ParseMemoryModel(ck.Model)
	if err != nil {
		return nil, err
	}
	n, passages := ck.Meta.N, ck.Meta.Passages
	subject, err := newMutexSubject(spec, n, passages)
	if err != nil {
		return nil, err
	}
	if opts.Faults != nil {
		return nil, fmt.Errorf("tradingfences: resume takes its fault plan from the snapshot (crash budget %d); do not set CheckOptions.Faults", ck.MaxCrashes)
	}
	if ck.MaxCrashes > 0 {
		opts.Faults = &FaultPlan{MaxCrashes: ck.MaxCrashes}
	}
	// Like the fault plan, the symmetry mode is pinned by the snapshot:
	// its visited keys are only meaningful under the canonicalization they
	// were minted with (the resume re-certifies this). So are the
	// reduction modes — bounded keys carry reorder ages and a reduced
	// frontier covers the reduced graph only. ck.ReorderBound is the
	// resolved bound (SC snapshots already carry 0), so copying it back
	// survives the SC no-op convention.
	opts.Symmetry = ck.Symmetry
	opts.ReorderBound = ck.ReorderBound
	opts.POR = ck.POR
	opts.CheckpointPath = path
	res, xerr := subject.ResumeExhaustiveParallel(ctx, model.internal(), ck, opts.checkOpts("mutex", spec.String(), n, passages))
	v = &MutexVerdict{
		Lock:            spec,
		Model:           model,
		Mode:            ModeExhaustive,
		Violated:        res.Violation,
		Proved:          res.Complete && !res.Violation && res.ReorderBound == 0,
		States:          res.States,
		SymmetryApplied: res.SymmetryApplied,
		Coverage: Coverage{
			ExhaustiveStates: res.States,
			ReorderBound:     res.ReorderBound,
			BoundedComplete:  res.ReorderBound > 0 && res.Complete && !res.Violation,
			POR:              res.PORApplied,
		},
	}
	if xerr != nil {
		v.Proved = false
		if run.IsLimit(xerr) {
			return v, xerr
		}
		return nil, xerr
	}
	if aerr := attachWitness(ctx, subject, spec.String(), n, passages, model, v, res.Witness, opts.Faults); aerr != nil {
		return v, aerr
	}
	return v, nil
}

package tradingfences

import (
	"context"
	"errors"
	"fmt"

	"tradingfences/internal/check"
	"tradingfences/internal/run"
)

// FCFSVerdict reports a first-come-first-served check: Lamport's fairness
// notion — if p completes its wait-free doorway before q enters its
// doorway, q does not enter the critical section before p.
type FCFSVerdict struct {
	Lock  LockSpec
	Model MemoryModel
	// Violated is true if an overtake was found; Violator entered the
	// critical section before Overtaken despite arriving later.
	Violated            bool
	Violator, Overtaken int
	// Proved is true if the product state space (machine × precedence
	// monitor) was exhausted without a violation. Never true in degraded
	// mode.
	Proved bool
	// States is the number of distinct product states explored.
	States int
	// Mode records how the verdict was reached (same constants as
	// MutexVerdict: ModeExhaustive or ModeDegraded).
	Mode string
	// Coverage quantifies the exploration behind the verdict.
	Coverage Coverage
}

// CheckFCFSCtx exhaustively checks first-come-first-served fairness of the
// lock for n processes (one passage each) under the given memory model,
// bounded by opts.Budget and cancelled by ctx. Fault plans are rejected:
// the precedence monitor is not crash-aware. Workers, CheckpointPath and
// CheckpointEvery are rejected too: the parallel checkpointed explorer
// covers mutual-exclusion checking only, and silently falling back to the
// sequential non-checkpointed walk would betray what the caller asked for.
//
// Budget handling mirrors CheckMutexCtx: a degradable trip (states,
// memory) continues with a seeded randomized search and the verdict
// reports Mode == ModeDegraded with its Coverage; non-degradable limits
// (steps, wall, context) return the partial (unproved) verdict alongside
// the structured error.
func CheckFCFSCtx(ctx context.Context, spec LockSpec, n int, model MemoryModel, opts CheckOptions) (v *FCFSVerdict, err error) {
	defer run.Recover("check fcfs", &err)
	if opts.Workers > 0 || opts.CheckpointPath != "" || opts.CheckpointEvery != 0 {
		return nil, errors.New("tradingfences: FCFS checking runs the sequential product-space explorer; Workers and checkpointing apply to mutual-exclusion checking only")
	}
	ctor, err := spec.constructor()
	if err != nil {
		return nil, err
	}
	subject, err := check.NewFCFSSubject(spec.String(), ctor, n)
	if err != nil {
		return nil, err
	}
	// Symmetry is forwarded so the product-space explorer rejects it
	// loudly (the precedence monitor distinguishes processes).
	chkOpts := check.Opts{Budget: opts.Budget, Faults: opts.Faults, Symmetry: opts.Symmetry}
	res, cerr := subject.Exhaustive(ctx, model.internal(), chkOpts)
	v = &FCFSVerdict{
		Lock:      spec,
		Model:     model,
		Violated:  res.Violation,
		Violator:  res.Violator,
		Overtaken: res.Overtaken,
		Proved:    res.Complete && !res.Violation,
		States:    res.States,
		Mode:      ModeExhaustive,
		Coverage:  Coverage{ExhaustiveStates: res.States},
	}
	if cerr == nil {
		return v, nil
	}
	var be *run.BudgetError
	switch {
	case errors.As(cerr, &be) && be.Degradable():
		// Graceful degradation, uniform with the mutex checker: the
		// product state space outgrew its budget, so continue with a
		// randomized hunt (which holds no visited set).
		runs, maxSteps := opts.fallback()
		rres, rerr := subject.Random(ctx, model.internal(), newRand(opts.Seed), runs, maxSteps, 0.35, check.Opts{Faults: opts.Faults})
		v.Mode = ModeDegraded
		v.Proved = false
		v.Coverage.RandomSteps = rres.States
		if rres.Violation {
			v.Violated = true
			v.Violator, v.Overtaken = rres.Violator, rres.Overtaken
		}
		if rerr != nil && !run.IsLimit(rerr) {
			return v, rerr
		}
		return v, nil
	case run.IsLimit(cerr):
		v.Proved = false
		return v, cerr
	default:
		return nil, fmt.Errorf("fcfs %v: %w", spec, cerr)
	}
}

// CheckFCFS exhaustively checks first-come-first-served fairness of the
// lock for n processes (one passage each) under the given memory model.
// The lock must declare a wait-free doorway (Bakery variants, Peterson,
// GT_f); the tournament tree does not, and FCFS is undefined for it.
// A tripped state budget yields an unproved verdict without error.
//
// The headline result: Bakery is FCFS (its fence-heavy doorway buys
// fairness), while GT_f for f >= 2 is not — a process alone in its subtree
// overtakes earlier arrivals from contended subtrees. Trading fences for
// RMRs costs first-come-first-served fairness.
func CheckFCFS(spec LockSpec, n int, model MemoryModel, maxStates int) (*FCFSVerdict, error) {
	v, err := CheckFCFSCtx(context.Background(), spec, n, model,
		CheckOptions{Budget: Budget{MaxStates: maxStates}})
	if err != nil && v != nil && run.IsLimit(err) {
		return v, nil
	}
	return v, err
}

package tradingfences

import (
	"fmt"

	"tradingfences/internal/check"
)

// FCFSVerdict reports a first-come-first-served check: Lamport's fairness
// notion — if p completes its wait-free doorway before q enters its
// doorway, q does not enter the critical section before p.
type FCFSVerdict struct {
	Lock  LockSpec
	Model MemoryModel
	// Violated is true if an overtake was found; Violator entered the
	// critical section before Overtaken despite arriving later.
	Violated            bool
	Violator, Overtaken int
	// Proved is true if the product state space (machine × precedence
	// monitor) was exhausted without a violation.
	Proved bool
	// States is the number of distinct product states explored.
	States int
}

// CheckFCFS exhaustively checks first-come-first-served fairness of the
// lock for n processes (one passage each) under the given memory model.
// The lock must declare a wait-free doorway (Bakery variants, Peterson,
// GT_f); the tournament tree does not, and FCFS is undefined for it.
//
// The headline result: Bakery is FCFS (its fence-heavy doorway buys
// fairness), while GT_f for f >= 2 is not — a process alone in its subtree
// overtakes earlier arrivals from contended subtrees. Trading fences for
// RMRs costs first-come-first-served fairness.
func CheckFCFS(spec LockSpec, n int, model MemoryModel, maxStates int) (*FCFSVerdict, error) {
	ctor, err := spec.constructor()
	if err != nil {
		return nil, err
	}
	subject, err := check.NewFCFSSubject(spec.String(), ctor, n)
	if err != nil {
		return nil, err
	}
	res, err := subject.Exhaustive(model.internal(), maxStates)
	if err != nil {
		return nil, fmt.Errorf("fcfs %v: %w", spec, err)
	}
	return &FCFSVerdict{
		Lock:      spec,
		Model:     model,
		Violated:  res.Violation,
		Violator:  res.Violator,
		Overtaken: res.Overtaken,
		Proved:    res.Complete && !res.Violation,
		States:    res.States,
	}, nil
}

package tradingfences

import (
	"context"
	"fmt"

	"tradingfences/internal/check"
	"tradingfences/internal/run"
)

// FCFSVerdict reports a first-come-first-served check: Lamport's fairness
// notion — if p completes its wait-free doorway before q enters its
// doorway, q does not enter the critical section before p.
type FCFSVerdict struct {
	Lock  LockSpec
	Model MemoryModel
	// Violated is true if an overtake was found; Violator entered the
	// critical section before Overtaken despite arriving later.
	Violated            bool
	Violator, Overtaken int
	// Proved is true if the product state space (machine × precedence
	// monitor) was exhausted without a violation.
	Proved bool
	// States is the number of distinct product states explored.
	States int
}

// CheckFCFSCtx exhaustively checks first-come-first-served fairness of the
// lock for n processes (one passage each) under the given memory model,
// bounded by opts.Budget and cancelled by ctx. Budget trips return the
// partial (unproved) verdict alongside the structured error. Fault plans
// are rejected: the precedence monitor is not crash-aware.
func CheckFCFSCtx(ctx context.Context, spec LockSpec, n int, model MemoryModel, opts CheckOptions) (v *FCFSVerdict, err error) {
	defer run.Recover("check fcfs", &err)
	ctor, err := spec.constructor()
	if err != nil {
		return nil, err
	}
	subject, err := check.NewFCFSSubject(spec.String(), ctor, n)
	if err != nil {
		return nil, err
	}
	res, cerr := subject.Exhaustive(ctx, model.internal(), check.Opts{Budget: opts.Budget, Faults: opts.Faults})
	if cerr != nil && !run.IsLimit(cerr) {
		return nil, fmt.Errorf("fcfs %v: %w", spec, cerr)
	}
	return &FCFSVerdict{
		Lock:      spec,
		Model:     model,
		Violated:  res.Violation,
		Violator:  res.Violator,
		Overtaken: res.Overtaken,
		Proved:    res.Complete && !res.Violation,
		States:    res.States,
	}, cerr
}

// CheckFCFS exhaustively checks first-come-first-served fairness of the
// lock for n processes (one passage each) under the given memory model.
// The lock must declare a wait-free doorway (Bakery variants, Peterson,
// GT_f); the tournament tree does not, and FCFS is undefined for it.
// A tripped state budget yields an unproved verdict without error.
//
// The headline result: Bakery is FCFS (its fence-heavy doorway buys
// fairness), while GT_f for f >= 2 is not — a process alone in its subtree
// overtakes earlier arrivals from contended subtrees. Trading fences for
// RMRs costs first-come-first-served fairness.
func CheckFCFS(spec LockSpec, n int, model MemoryModel, maxStates int) (*FCFSVerdict, error) {
	v, err := CheckFCFSCtx(context.Background(), spec, n, model,
		CheckOptions{Budget: Budget{MaxStates: maxStates}})
	if err != nil && v != nil && run.IsLimit(err) {
		return v, nil
	}
	return v, err
}

package tradingfences

import (
	"tradingfences/internal/machine"
	"tradingfences/internal/run"
	"tradingfences/internal/witness"
)

// Budget bounds the resources a check or encode run may consume. The zero
// value of each field means "unlimited".
//
// Memory accounting unit: exhaustive checking charges MaxMemEstimate a
// fixed amount per visited state — the 16-byte binary StateKey plus a
// constant per-entry map overhead — so the estimate is exact and
// independent of lock size, process count and memory model. The visited
// set is the dominant retained memory of an exploration: both explorers
// walk one configuration per goroutine under an undo trail, so neither
// accumulates per-state configuration copies. (Analyses that
// retain whole configurations, like liveness checking, charge a larger
// per-node constant instead.)
type Budget = run.Budget

// BudgetError reports which resource of a Budget was exhausted; every
// BudgetError matches ErrBudgetExceeded via errors.Is.
type BudgetError = run.BudgetError

// ErrBudgetExceeded is the sentinel matched by every budget violation.
var ErrBudgetExceeded = run.ErrBudgetExceeded

// IsLimit reports whether err is a resource-limit condition — a budget
// trip or a context cancellation/deadline — as opposed to a genuine
// failure of the work itself.
func IsLimit(err error) bool { return run.IsLimit(err) }

// FaultPlan describes faults injected into an execution: deterministic
// crash points, commit-stall windows, and an adversarial crash budget for
// exploratory checking. A nil plan injects nothing.
type FaultPlan = machine.FaultPlan

// CrashPoint schedules a deterministic crash of a process before a given
// schedule index.
type CrashPoint = machine.CrashPoint

// StallWindow suspends commits of a process's buffered writes while the
// global step count lies inside the window.
type StallWindow = machine.StallWindow

// Witness is the replayable failure artifact: a versioned JSON document
// bundling a violating schedule with the subject identity, fault plan and
// the fingerprints that certify a bit-for-bit replay.
type Witness = witness.Witness

// CheckOptions parameterizes the context-aware checking entry points.
type CheckOptions struct {
	// Budget bounds the run (zero fields = unlimited).
	Budget Budget
	// Faults is the fault plan to inject (nil = none). Exhaustive checking
	// accepts only the MaxCrashes budget; stall windows and fixed crash
	// points are for randomized search and replay.
	Faults *FaultPlan
	// Seed seeds the randomized fallback used when the state budget trips.
	Seed int64
	// FallbackRuns and FallbackMaxSteps size the randomized fallback
	// (0 = defaults: 2000 runs of up to 400 steps).
	FallbackRuns, FallbackMaxSteps int
	// Symmetry enables process-symmetry reduction in exhaustive mutual-
	// exclusion checking: the visited set is keyed on the canonical
	// representative of each state's orbit under process renaming, so
	// mirror-image states are explored once. Witnesses stay concrete
	// schedules that replay directly. Only locks that declare a symmetry
	// specification (Peterson variants) actually reduce; for all others
	// the flag is an honest no-op with bit-identical verdicts. CheckFCFSCtx
	// rejects the flag: its precedence monitor distinguishes processes, so
	// the reduction would be unsound there.
	Symmetry bool
	// Workers > 0 selects the work-stealing parallel explorer with that
	// many goroutines; 0 keeps the sequential depth-first explorer.
	// Workers=1 is bit-identical to sequential (verdict, witness schedule,
	// state count, budget-trip point); at higher counts verdicts and
	// complete-run state counts stay exact, but which witness is found
	// first and where a budget trips become scheduling-dependent. Workers
	// and the checkpoint fields apply to mutual-exclusion checking;
	// CheckFCFSCtx rejects them rather than silently running sequentially.
	Workers int
	// CheckpointPath, when non-empty, makes the exploration write periodic
	// atomic snapshots there (and implies the parallel explorer with one
	// worker if Workers is 0 — single-threaded, so snapshot contents and
	// budget-trip points stay deterministic). A later ResumeMutexCheckCtx
	// continues from the snapshot.
	CheckpointPath string
	// CheckpointEvery is the snapshot cadence floor in freshly interned
	// states (0 = the 1024 default; the interval grows geometrically with
	// the state space — see the internal CheckpointPolicy).
	CheckpointEvery int
	// ReorderBound > 0 switches exhaustive exploration under TSO/PSO to
	// reorder-bounded buffer semantics: each buffered write may reorder
	// past at most ReorderBound of its own process's later program-order
	// operations before the process must retire it. The bounded graph
	// under-approximates the full semantics, so a violation-free complete
	// run is a *bounded* certificate — MutexVerdict.Proved stays false and
	// Coverage.ReorderBound/BoundedComplete record what was shown. Every
	// violation found is genuine and its witness replays under the full
	// semantics. Inert under SC (reported as 0). Bounds above 255 are
	// rejected. The randomized fallback always searches the full
	// semantics; liveness and FCFS checking reject the flag.
	ReorderBound int
	// POR enables commit-step partial-order reduction with sleep sets in
	// exhaustive mutual-exclusion checking: provably independent
	// commit/step interleavings are explored once. Verdicts and witness
	// replayability are preserved, so a complete violation-free POR run is
	// still a full proof (Proved stays true); state counts shrink.
	// Liveness and FCFS checking reject the flag.
	POR bool
}

// parallel reports whether the options select the work-stealing explorer
// (explicitly via Workers, or implicitly by asking for checkpoints, which
// only that explorer writes).
func (o CheckOptions) parallel() bool { return o.Workers > 0 || o.CheckpointPath != "" }

const (
	defaultFallbackRuns     = 2000
	defaultFallbackMaxSteps = 400
)

func (o CheckOptions) fallback() (runs, maxSteps int) {
	runs, maxSteps = o.FallbackRuns, o.FallbackMaxSteps
	if runs <= 0 {
		runs = defaultFallbackRuns
	}
	if maxSteps <= 0 {
		maxSteps = defaultFallbackMaxSteps
	}
	return runs, maxSteps
}

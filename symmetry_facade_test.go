package tradingfences

import (
	"context"
	"strings"
	"testing"
)

// TestSymmetryDeterminism is the CI determinism round: for every lock in
// the separation matrix, checking with and without Symmetry must agree on
// the verdict, the flag must report as applied only where a declaration
// exists, and the reduced run must never count more states. Witnesses of
// symmetric runs are concrete schedules: they replay like any other.
func TestSymmetryDeterminism(t *testing.T) {
	cases := []struct {
		spec LockSpec
		sym  bool // carries a symmetry declaration
	}{
		{LockSpec{Kind: Peterson}, true},
		{LockSpec{Kind: PetersonTSO}, true},
		{LockSpec{Kind: PetersonNoFence}, true},
		{LockSpec{Kind: Bakery}, false},
		{LockSpec{Kind: BakeryTSO}, false},
	}
	for _, tc := range cases {
		for _, m := range Models() {
			what := tc.spec.String() + "/" + m.String()
			base, berr := CheckMutexCtx(context.Background(), tc.spec, 2, 1, m, CheckOptions{})
			if berr != nil {
				t.Fatalf("%s: %v", what, berr)
			}
			sym, serr := CheckMutexCtx(context.Background(), tc.spec, 2, 1, m, CheckOptions{Symmetry: true})
			if serr != nil {
				t.Fatalf("%s symmetry: %v", what, serr)
			}
			if base.Violated != sym.Violated || base.Proved != sym.Proved {
				t.Fatalf("%s: verdict changed under symmetry: (viol=%v proved=%v) vs (viol=%v proved=%v)",
					what, base.Violated, base.Proved, sym.Violated, sym.Proved)
			}
			if sym.SymmetryApplied != tc.sym {
				t.Fatalf("%s: SymmetryApplied = %v, want %v", what, sym.SymmetryApplied, tc.sym)
			}
			if base.SymmetryApplied {
				t.Fatalf("%s: plain run claims a symmetry reduction", what)
			}
			if sym.States > base.States {
				t.Fatalf("%s: symmetry grew the state count: %d > %d", what, sym.States, base.States)
			}
			if sym.Violated {
				if sym.Artifact == nil {
					t.Fatalf("%s: symmetric violation carries no witness artifact", what)
				}
				if _, err := ReplayWitness(sym.Artifact); err != nil {
					t.Fatalf("%s: symmetric witness does not replay: %v", what, err)
				}
			}
		}
	}
}

// FCFS checking distinguishes processes by construction; the facade must
// surface the explorer's rejection instead of silently dropping the flag.
func TestCheckFCFSRejectsSymmetry(t *testing.T) {
	_, err := CheckFCFSCtx(context.Background(), LockSpec{Kind: Bakery}, 2, PSO, CheckOptions{Symmetry: true})
	if err == nil || !strings.Contains(err.Error(), "symmetry") {
		t.Fatalf("CheckFCFSCtx accepted Symmetry: %v", err)
	}
}

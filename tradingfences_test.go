package tradingfences

import (
	"math"
	"strings"
	"testing"
)

func TestNewSystemAndSequentialRun(t *testing.T) {
	sys, err := NewSystem(LockSpec{Kind: Bakery}, Count, 6)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.RunSequential(PSO, nil)
	if err != nil {
		t.Fatal(err)
	}
	for p, v := range rep.Returns {
		if v != int64(p) {
			t.Fatalf("process %d returned %d, want %d", p, v, p)
		}
	}
	if rep.MaxFences <= 0 || rep.MaxRMRs <= 0 {
		t.Fatalf("degenerate stats: %+v", rep)
	}
}

func TestRunConcurrentAllModels(t *testing.T) {
	for _, spec := range []LockSpec{
		{Kind: Bakery},
		{Kind: Tournament},
		{Kind: GT, F: 2},
	} {
		for _, m := range Models() {
			sys, err := NewSystem(spec, Count, 5)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := sys.RunConcurrent(m)
			if err != nil {
				t.Fatalf("%v under %v: %v", spec, m, err)
			}
			seen := make([]bool, 5)
			for _, v := range rep.Returns {
				if v < 0 || v >= 5 || seen[v] {
					t.Fatalf("%v under %v: returns %v not a rank permutation", spec, m, rep.Returns)
				}
				seen[v] = true
			}
		}
	}
}

func TestRunRandomValid(t *testing.T) {
	sys, err := NewSystem(LockSpec{Kind: GT, F: 2}, FetchAndIncrement, 4)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 10; seed++ {
		rep, err := sys.RunRandom(PSO, seed, 0.3)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		seen := make([]bool, 4)
		for _, v := range rep.Returns {
			if v < 0 || v >= 4 || seen[v] {
				t.Fatalf("seed %d: returns %v", seed, rep.Returns)
			}
			seen[v] = true
		}
	}
}

func TestMeasureLockBakeryFlatFences(t *testing.T) {
	var prev int64 = -1
	for _, n := range []int{4, 16, 64} {
		pt, err := MeasureLock(LockSpec{Kind: Bakery}, n)
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && pt.Fences != prev {
			t.Fatalf("Bakery fences changed with n: %d at n=%d, was %d", pt.Fences, n, prev)
		}
		prev = pt.Fences
	}
	if prev != 4 {
		t.Fatalf("Bakery per-passage fences = %d, want 4 (3 acquire + 1 release)", prev)
	}
}

func TestTradeoffSweepShape(t *testing.T) {
	pts, err := TradeoffSweep(64)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 { // f = 1..log2(64)
		t.Fatalf("sweep returned %d points, want 6", len(pts))
	}
	// RMRs must be non-increasing-ish in f and fences increasing.
	if !(pts[0].RMRs > pts[len(pts)-1].RMRs) {
		t.Fatalf("RMRs did not fall from f=1 (%d) to f=max (%d)", pts[0].RMRs, pts[len(pts)-1].RMRs)
	}
	if !(pts[0].Fences < pts[len(pts)-1].Fences) {
		t.Fatalf("fences did not rise from f=1 (%d) to f=max (%d)", pts[0].Fences, pts[len(pts)-1].Fences)
	}
	for _, pt := range pts {
		// Equation 2 tightness: measured RMRs within a constant factor of
		// f·n^(1/f).
		if pt.RMRBound <= 0 {
			t.Fatalf("missing RMR budget for %v", pt.Lock)
		}
		ratio := float64(pt.RMRs) / pt.RMRBound
		if ratio > 8 {
			t.Errorf("GT_%d at n=64: RMRs %d exceed 8×(f·n^(1/f)) = %f", pt.Lock.F, pt.RMRs, 8*pt.RMRBound)
		}
		// Equation 1 lower bound: normalized product bounded below.
		if pt.Normalized < 0.5 {
			t.Errorf("GT_%d at n=64: normalized tradeoff %f below 0.5 — lower bound violated?", pt.Lock.F, pt.Normalized)
		}
	}
}

func TestEncodePermutationRoundTrip(t *testing.T) {
	pi := []int{4, 1, 3, 0, 2}
	rep, err := EncodePermutation(LockSpec{Kind: Bakery}, Count, pi)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fences <= 0 || rep.RMRs <= 0 || rep.Commands <= 0 || rep.BitLen <= 0 {
		t.Fatalf("degenerate report: %+v", rep)
	}
	got, err := RecoverPermutationFromCode(LockSpec{Kind: Bakery}, Count, 5, rep.Code, rep.BitLen)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pi {
		if got[i] != pi[i] {
			t.Fatalf("recovered %v, want %v", got, pi)
		}
	}
	// Census uses only Table 1's vocabulary and the totals agree.
	c := rep.Census
	if c.Proceed+c.Commit+c.WaitHiddenCommit+c.WaitReadFinish+c.WaitLocalFinish != rep.Commands {
		t.Fatalf("census %+v does not sum to %d", c, rep.Commands)
	}
}

func TestEncodePermutationRejectsBadInput(t *testing.T) {
	if _, err := EncodePermutation(LockSpec{Kind: Bakery}, Count, []int{0, 0, 1}); err == nil {
		t.Error("invalid permutation accepted")
	}
	if _, err := EncodePermutation(LockSpec{Kind: GT}, Count, []int{0, 1}); err == nil {
		t.Error("GT without F accepted")
	}
}

func TestPermHelpers(t *testing.T) {
	if got := IdentityPerm(3); got[0] != 0 || got[2] != 2 {
		t.Errorf("IdentityPerm: %v", got)
	}
	if got := ReversePerm(3); got[0] != 2 || got[2] != 0 {
		t.Errorf("ReversePerm: %v", got)
	}
	p := RandomPerm(10, 7)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("RandomPerm invalid: %v", p)
		}
		seen[v] = true
	}
	if math.Abs(Log2Factorial(5)-math.Log2(120)) > 1e-9 {
		t.Error("Log2Factorial(5) wrong")
	}
}

func TestCheckMutexFacade(t *testing.T) {
	v, err := CheckMutex(LockSpec{Kind: PetersonTSO}, 2, 1, PSO, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Violated || v.Witness == "" {
		t.Fatalf("expected PSO violation with witness, got %+v", v)
	}
	v, err = CheckMutex(LockSpec{Kind: PetersonTSO}, 2, 1, TSO, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if v.Violated || !v.Proved {
		t.Fatalf("expected TSO proof, got %+v", v)
	}
}

func TestCheckMutexRandomFacade(t *testing.T) {
	v, err := CheckMutexRandom(LockSpec{Kind: BakeryTSO}, 2, 1, PSO, 3, 20000, 400)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Violated {
		t.Fatal("random search failed to find the bakery-tso PSO violation")
	}
}

func TestSeparationMatrix(t *testing.T) {
	rows, err := SeparationMatrix(3_000_000)
	if err != nil {
		t.Fatal(err)
	}
	want := map[LockKind]map[MemoryModel]bool{ // violated?
		PetersonNoFence: {SC: false, TSO: true, PSO: true},
		PetersonTSO:     {SC: false, TSO: false, PSO: true},
		Peterson:        {SC: false, TSO: false, PSO: false},
		BakeryNoFence:   {SC: false, TSO: true, PSO: true},
		BakeryTSO:       {SC: false, TSO: false, PSO: true},
		Bakery:          {SC: false, TSO: false, PSO: false},
		BakeryLiteral:   {SC: true, TSO: true, PSO: true},
	}
	for _, row := range rows {
		exp, ok := want[row.Lock.Kind]
		if !ok {
			t.Fatalf("unexpected row %v", row.Lock)
		}
		for m, wantViol := range exp {
			v := row.Verdicts[m]
			if v == nil {
				t.Fatalf("%v missing verdict for %v", row.Lock, m)
			}
			if v.Violated != wantViol {
				t.Errorf("%v under %v: violated=%v, want %v", row.Lock, m, v.Violated, wantViol)
			}
			if !wantViol && !v.Proved {
				t.Errorf("%v under %v: expected exhaustive proof", row.Lock, m)
			}
		}
	}
}

func TestCorrectUnder(t *testing.T) {
	if got := (LockSpec{Kind: BakeryLiteral}).CorrectUnder(); got != nil {
		t.Errorf("BakeryLiteral correct under %v, want none", got)
	}
	if got := (LockSpec{Kind: PetersonTSO}).CorrectUnder(); len(got) != 2 {
		t.Errorf("PetersonTSO correct under %v, want SC+TSO", got)
	}
	if got := (LockSpec{Kind: GT, F: 2}).CorrectUnder(); len(got) != 3 {
		t.Errorf("GT correct under %v, want all", got)
	}
}

func TestShapeGTFacade(t *testing.T) {
	sh := ShapeGT(256, 4)
	if sh.Branching != 4 || len(sh.NodesPerLevel) != 4 {
		t.Fatalf("ShapeGT(256,4) = %+v", sh)
	}
	if sh.NodesPerLevel[3] != 1 {
		t.Fatalf("root level should have 1 node: %+v", sh)
	}
}

func TestMeasureLockInAccountings(t *testing.T) {
	const n = 16
	for _, spec := range []LockSpec{{Kind: Bakery}, {Kind: Tournament}} {
		var combined, dsm, cc int64
		for _, acct := range RMRModels() {
			pt, err := MeasureLockIn(spec, n, acct)
			if err != nil {
				t.Fatal(err)
			}
			switch acct {
			case CombinedModel:
				combined = pt.RMRs
			case DSMModel:
				dsm = pt.RMRs
			case CCModel:
				cc = pt.RMRs
			}
		}
		// The combined model is the weakest counting.
		if combined > dsm || combined > cc {
			t.Errorf("%v: combined=%d dsm=%d cc=%d — combined must be smallest", spec, combined, dsm, cc)
		}
		if dsm <= 0 || cc <= 0 {
			t.Errorf("%v: degenerate counts dsm=%d cc=%d", spec, dsm, cc)
		}
	}
	// Bakery's scan is charged identically by all three models at the
	// first visit; its fence count is accounting-independent.
	pt1, err := MeasureLockIn(LockSpec{Kind: Bakery}, n, DSMModel)
	if err != nil {
		t.Fatal(err)
	}
	pt2, err := MeasureLockIn(LockSpec{Kind: Bakery}, n, CCModel)
	if err != nil {
		t.Fatal(err)
	}
	if pt1.Fences != pt2.Fences {
		t.Errorf("fences differ across accountings: %d vs %d", pt1.Fences, pt2.Fences)
	}
}

func TestCheckOrderingFacade(t *testing.T) {
	v, err := CheckOrdering(LockSpec{Kind: Bakery}, Count, 4, PSO, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Ordering() {
		t.Fatalf("bakery Count should be ordering: %v", v.Err)
	}
	if v.SequentialOrders != 24*4 {
		t.Errorf("sequential order count %d, want 96", v.SequentialOrders)
	}
	// A PSO-broken lock fails the concurrent half of the check.
	v, err = CheckOrdering(LockSpec{Kind: BakeryTSO}, Count, 2, PSO, 30000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if v.Ordering() {
		t.Fatal("bakery-tso under PSO should fail the ordering check")
	}
	// Size guard.
	if _, err := CheckOrdering(LockSpec{Kind: Bakery}, Count, 12, PSO, 0, 0); err == nil {
		t.Error("n=12 exhaustive order check should be rejected")
	}
}

func TestSystemListingAndAnalysis(t *testing.T) {
	sys, err := NewSystem(LockSpec{Kind: Bakery}, Count, 4)
	if err != nil {
		t.Fatal(err)
	}
	listing := sys.Listing()
	for _, want := range []string{"program obj {", "fence()", "return", "write("} {
		if !strings.Contains(listing, want) {
			t.Errorf("listing missing %q", want)
		}
	}
	a := sys.Analyze()
	// Classic Bakery acquire has 3 writes + release 1 + Count's 1 = 5;
	// fences: 3 + 1 + CS fence + trailing = 6.
	if a.Writes != 5 {
		t.Errorf("static writes = %d, want 5", a.Writes)
	}
	if a.Fences != 6 {
		t.Errorf("static fences = %d, want 6", a.Fences)
	}
	if a.Returns != 1 || a.MaxLoopDepth < 1 || a.Locals == 0 {
		t.Errorf("analysis: %+v", a)
	}
	regs := sys.DescribeRegisters()
	for _, want := range []string{"lk.C[0]", "lk.T[3]", "obj.C", "segment: process 2", "segment: none"} {
		if !strings.Contains(regs, want) {
			t.Errorf("register map missing %q:\n%s", want, regs)
		}
	}
}

func TestExplainRMRs(t *testing.T) {
	br, err := ExplainRMRs(LockSpec{Kind: Bakery}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if br.TotalRMRs <= 0 || len(br.Rows) == 0 || br.Table == "" {
		t.Fatalf("degenerate breakdown: %+v", br)
	}
	// The scan arrays dominate and rows are sorted.
	if br.Rows[0].Array != "lk.C" && br.Rows[0].Array != "lk.T" {
		t.Errorf("top array %q, want lk.C or lk.T", br.Rows[0].Array)
	}
	var sum int64
	for i, r := range br.Rows {
		sum += r.RMRs()
		if i > 0 && br.Rows[i-1].RMRs() < r.RMRs() {
			t.Error("rows not sorted by RMRs")
		}
	}
	if sum != br.TotalRMRs {
		t.Errorf("row sum %d != total %d", sum, br.TotalRMRs)
	}
}

func TestTraceTimeline(t *testing.T) {
	out, err := TraceTimeline(LockSpec{Kind: Peterson}, 2, PSO, 40)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"p0", "p1", "fence", "lk.flag"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
}

func TestFilterSuboptimalProduct(t *testing.T) {
	// The filter lock's fence bill makes its tradeoff product grow
	// linearly in n — the suboptimality the GT family avoids.
	pt16, err := MeasureLock(LockSpec{Kind: Filter}, 16)
	if err != nil {
		t.Fatal(err)
	}
	pt64, err := MeasureLock(LockSpec{Kind: Filter}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if pt16.Fences != 2*15+1 || pt64.Fences != 2*63+1 {
		t.Fatalf("filter fences: %d at n=16, %d at n=64", pt16.Fences, pt64.Fences)
	}
	// The normalized product grows with n (≈ 2n/log2 n), unlike the GT
	// family's Θ(1).
	if pt64.Normalized < 2*pt16.Normalized {
		t.Fatalf("filter product should grow superlogarithmically: %f at 16, %f at 64",
			pt16.Normalized, pt64.Normalized)
	}
	gt, err := MeasureLock(LockSpec{Kind: GT, F: 2}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if pt64.Normalized < 3*gt.Normalized {
		t.Fatalf("filter (%f) should be far above GT_2 (%f) at n=64", pt64.Normalized, gt.Normalized)
	}
}

func TestMeasureLockRepeatedAmortization(t *testing.T) {
	// Bakery's scan re-reads the same (unchanged) registers each passage:
	// under combined accounting the warm-cache passages are dramatically
	// cheaper than the first.
	pt, err := MeasureLockRepeated(LockSpec{Kind: Bakery}, 32, 8, CombinedModel)
	if err != nil {
		t.Fatal(err)
	}
	if pt.AmortizedRMRs >= float64(pt.FirstRMRs) {
		t.Fatalf("no amortization: first=%d amortized=%f", pt.FirstRMRs, pt.AmortizedRMRs)
	}
	if pt.AmortizedRMRs > float64(pt.FirstRMRs)/2 {
		t.Fatalf("amortization too weak: first=%d amortized=%f", pt.FirstRMRs, pt.AmortizedRMRs)
	}
	// Under DSM accounting there is no cache, so no amortization.
	dsm, err := MeasureLockRepeated(LockSpec{Kind: Bakery}, 32, 8, DSMModel)
	if err != nil {
		t.Fatal(err)
	}
	if dsm.AmortizedRMRs < float64(dsm.FirstRMRs)*0.9 {
		t.Fatalf("DSM should not amortize: first=%d amortized=%f", dsm.FirstRMRs, dsm.AmortizedRMRs)
	}
	// Fences never amortize: they are a per-passage constant.
	if pt.AmortizedFences < 3.5 || pt.AmortizedFences > 4.5 {
		t.Fatalf("amortized fences %f, want ~4", pt.AmortizedFences)
	}
	if _, err := MeasureLockRepeated(LockSpec{Kind: Bakery}, 4, 0, CombinedModel); err == nil {
		t.Error("passages=0 should error")
	}
}

func TestWitnessScheduleReplay(t *testing.T) {
	v, err := CheckMutex(LockSpec{Kind: BakeryTSO}, 2, 1, PSO, 3_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Violated || v.WitnessSchedule == "" {
		t.Fatalf("expected violation with schedule, got %+v", v)
	}
	trace, err := ReplaySchedule(LockSpec{Kind: BakeryTSO}, 2, 1, PSO, v.WitnessSchedule)
	if err != nil {
		t.Fatal(err)
	}
	if trace != v.Witness {
		t.Fatal("replayed trace differs from the original witness")
	}
	if _, err := ReplaySchedule(LockSpec{Kind: BakeryTSO}, 2, 1, PSO, "garbage!"); err == nil {
		t.Error("garbage schedule accepted")
	}
}

func TestMeasureLockContended(t *testing.T) {
	// The tournament tree is a local-spin algorithm: its contended RMR
	// count stays within a small factor of the solo count under the
	// cache-aware (combined) accounting.
	pt, err := MeasureLockContended(LockSpec{Kind: Tournament}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if pt.ContendedRMRs < pt.SoloRMRs {
		t.Fatalf("contended (%d) below solo (%d)?", pt.ContendedRMRs, pt.SoloRMRs)
	}
	if pt.ContendedRMRs > 8*pt.SoloRMRs {
		t.Fatalf("tournament not local-spin: solo=%d contended=%d", pt.SoloRMRs, pt.ContendedRMRs)
	}
	// Fences are schedule-independent: the contended fence count equals
	// the Count wrapper's sequential one.
	sys, err := NewSystem(LockSpec{Kind: Tournament}, Count, 8)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := sys.RunSequential(PSO, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pt.ContendedFences != seq.MaxFences {
		t.Fatalf("fences changed under contention: %d vs %d", pt.ContendedFences, seq.MaxFences)
	}
}

func TestCheckFCFSFacade(t *testing.T) {
	// Bakery: FCFS proved.
	v, err := CheckFCFS(LockSpec{Kind: Bakery}, 2, PSO, 5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Proved || v.Violated {
		t.Fatalf("bakery FCFS verdict: %+v", v)
	}
	// GT_2 with 3 processes: overtake found.
	v, err = CheckFCFS(LockSpec{Kind: GT, F: 2}, 3, PSO, 8_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Violated {
		t.Fatalf("GT_2 FCFS verdict: %+v", v)
	}
	// Tournament: no doorway, FCFS undefined.
	if _, err := CheckFCFS(LockSpec{Kind: Tournament}, 2, PSO, 1000); err == nil {
		t.Error("tournament FCFS check should be rejected")
	}
}

func TestCheckLivenessFacade(t *testing.T) {
	v, err := CheckLiveness(LockSpec{Kind: Peterson}, 2, 1, PSO, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Complete || !v.DeadlockFree || !v.WeakObstructionFree {
		t.Fatalf("peterson liveness verdict: %+v", v)
	}
	if v.StuckStates != 0 {
		t.Fatalf("stuck states on a correct lock: %+v", v)
	}
}

func TestFacadeErrorPaths(t *testing.T) {
	bad := LockSpec{Kind: LockKind(99)}
	if _, err := NewSystem(bad, Count, 2); err == nil {
		t.Error("unknown lock kind accepted by NewSystem")
	}
	if _, err := CheckMutex(bad, 2, 1, PSO, 100); err == nil {
		t.Error("unknown lock kind accepted by CheckMutex")
	}
	if _, err := CheckLiveness(bad, 2, 1, PSO, 100); err == nil {
		t.Error("unknown lock kind accepted by CheckLiveness")
	}
	if _, err := CheckFCFS(bad, 2, PSO, 100); err == nil {
		t.Error("unknown lock kind accepted by CheckFCFS")
	}
	if _, err := MeasureLock(bad, 4); err == nil {
		t.Error("unknown lock kind accepted by MeasureLock")
	}
	if _, err := NewSystem(LockSpec{Kind: Bakery}, ObjectKind(42), 2); err == nil {
		t.Error("unknown object kind accepted")
	}
	if _, err := NewSystem(LockSpec{Kind: Peterson}, Count, 5); err == nil {
		t.Error("peterson with n=5 accepted")
	}
	if _, err := ReplaySchedule(bad, 2, 1, PSO, "p0"); err == nil {
		t.Error("unknown lock kind accepted by ReplaySchedule")
	}
}

func TestDemoLockKindsWired(t *testing.T) {
	// The demo kinds must be constructible through the facade (used by
	// the liveness example) and declare no correct models.
	for _, k := range []LockKind{DeadlockDemo, RendezvousDemo} {
		if _, err := NewSystem(LockSpec{Kind: k}, Count, 2); err != nil {
			t.Errorf("%v: %v", k, err)
		}
		if got := (LockSpec{Kind: k}).CorrectUnder(); got != nil {
			t.Errorf("%v claims correctness under %v", k, got)
		}
	}
}

func TestLockSpecStrings(t *testing.T) {
	if s := (LockSpec{Kind: GT, F: 3}).String(); s != "gt3" {
		t.Errorf("GT spec string %q", s)
	}
	if s := (LockSpec{Kind: Bakery}).String(); s != "bakery" {
		t.Errorf("bakery spec string %q", s)
	}
	if ObjectKind(99).String() == "" || LockKind(99).String() == "" || MemoryModel(99).String() == "" {
		t.Error("unknown enum strings should be non-empty")
	}
}
